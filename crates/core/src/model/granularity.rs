//! Deriving storage granularity and scattering bounds (§3.3.4), and the
//! paper's unconstrained-allocation feasibility argument (§3).

use crate::model::continuity;
use crate::model::params::VideoStream;
use strandfs_disk::SimDisk;
use strandfs_media::{DisplayDevice, RetrievalArchitecture};
use strandfs_units::{BitRate, Bits, Bytes, Seconds};

/// How to pick the granularity within the device-admitted range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QChoice {
    /// Use the largest granularity the display device's buffers admit
    /// (`f`, `f/2` or `f/p` depending on architecture) — maximizes the
    /// scattering bound.
    MaxBuffers,
    /// Use exactly this granularity (clamped to at least 1); fails layout
    /// derivation if the device cannot buffer it.
    Exact(u64),
}

/// A complete physical layout decision for one video strand.
#[derive(Clone, Copy, Debug)]
pub struct StorageLayout {
    /// Frames per media block (`q_vs`).
    pub q: u64,
    /// Bits per media block (`q · s_vf`).
    pub block_bits: Bits,
    /// Sectors per media block on the target disk (rounded up).
    pub block_sectors: u64,
    /// The scattering upper bound admitted by the architecture's
    /// continuity equation at this granularity.
    pub scattering_upper: Seconds,
    /// The architecture the layout was derived for.
    pub arch: RetrievalArchitecture,
}

/// Derive a feasible `(q, l_ds)` layout for a video stream on `disk`
/// behind `device`, per §3.3.4:
///
/// 1. the device's internal buffers bound the usable granularity
///    (`f`, `f/2`, `f/p`);
/// 2. substituting the chosen `q` into the architecture's continuity
///    equation yields the scattering upper bound.
///
/// Returns `None` when no granularity in the admitted range satisfies
/// continuity even at zero scattering (the stream overwhelms the disk),
/// or when `QChoice::Exact` asks for more than the device can buffer.
pub fn derive_video_layout(
    arch: RetrievalArchitecture,
    device: &DisplayDevice,
    frame_bits: Bits,
    disk: &SimDisk,
    choice: QChoice,
) -> Option<StorageLayout> {
    let q_max = device.max_granularity(arch) as u64;
    let q = match choice {
        QChoice::MaxBuffers => q_max,
        QChoice::Exact(q) => {
            let q = q.max(1);
            if q > q_max {
                return None;
            }
            q
        }
    };
    let r_dt = disk.geometry().track_transfer_rate();
    let stream = VideoStream {
        q,
        s: frame_bits,
        rate: device.format.rate,
        r_vd: device.display_rate,
    };
    let bound = match arch {
        RetrievalArchitecture::Sequential => continuity::max_scattering_sequential(&stream, r_dt),
        RetrievalArchitecture::Pipelined => continuity::max_scattering_pipelined(&stream, r_dt),
        RetrievalArchitecture::Concurrent { p } => {
            continuity::max_scattering_concurrent(&stream, r_dt, p)
        }
    }?;
    let block_bytes = stream.block_bits().to_bytes_ceil();
    Some(StorageLayout {
        q,
        block_bits: stream.block_bits(),
        block_sectors: block_bytes.div_ceil(disk.geometry().sector_size),
        scattering_upper: bound,
        arch,
    })
}

/// Effective transfer rate of *unconstrained* (random) block allocation:
/// every block access pays full positioning, so `p` parallel heads
/// sustain `p · B / (l_pos + B/R_dt)` bits/s for `B`-bit blocks.
///
/// This is the paper's §3 argument that constrained allocation is
/// fundamental: with 4 KB blocks, 100 heads and ~10 ms positioning, the
/// result is ≈ 0.32 Gbit/s — below a single HDTV strand's 2.5 Gbit/s.
pub fn unconstrained_transfer_rate(
    block: Bytes,
    heads: u32,
    positioning: Seconds,
    r_dt_per_head: BitRate,
) -> BitRate {
    let block_bits = block.to_bits().as_f64();
    let per_block = positioning.get() + block_bits / r_dt_per_head.get();
    BitRate::bits_per_sec(heads as f64 * block_bits / per_block)
}

/// True if unconstrained allocation on the given configuration can feed
/// a stream of `required` bits/s.
pub fn unconstrained_supports(
    block: Bytes,
    heads: u32,
    positioning: Seconds,
    r_dt_per_head: BitRate,
    required: BitRate,
) -> bool {
    unconstrained_transfer_rate(block, heads, positioning, r_dt_per_head).get() >= required.get()
}

/// §3's companion bound: with *random* allocation, achieving a desired
/// average seek `l_desired` by sweep-ordering the reads requires
/// buffering up to `l_adj · n_cyl / l_desired` out-of-order blocks, where
/// `l_adj` is the adjacent-cylinder seek time.
pub fn sweep_buffering_blocks(
    adjacent_seek: Seconds,
    cylinders: u64,
    desired_avg_seek: Seconds,
) -> u64 {
    assert!(
        desired_avg_seek.get() > 0.0,
        "desired seek must be positive"
    );
    ((adjacent_seek.get() * cylinders as f64) / desired_avg_seek.get()).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use strandfs_disk::{DiskGeometry, SeekModel};

    fn disk() -> SimDisk {
        SimDisk::new(DiskGeometry::projected_fast(), SeekModel::projected_fast())
    }

    #[test]
    fn paper_worked_example_0_32_gbit() {
        // 4 KB blocks, 100 heads, 10 ms positioning, transfer fast enough
        // to be negligible -> ≈ 0.32 Gbit/s aggregate.
        let rate = unconstrained_transfer_rate(
            Bytes::kib(4),
            100,
            Seconds::from_millis(10.0),
            BitRate::gbit_per_sec(1.0),
        );
        let gbit = rate.get() / 1e9;
        assert!(
            (gbit - 0.32).abs() < 0.01,
            "expected ≈0.32 Gbit/s, got {gbit}"
        );
        // ... which cannot carry one 2.5 Gbit/s HDTV strand (the paper's
        // verdict).
        assert!(!unconstrained_supports(
            Bytes::kib(4),
            100,
            Seconds::from_millis(10.0),
            BitRate::gbit_per_sec(1.0),
            BitRate::gbit_per_sec(2.5),
        ));
    }

    #[test]
    fn layout_from_max_buffers() {
        let device = DisplayDevice::uvc(16);
        let layout = derive_video_layout(
            RetrievalArchitecture::Pipelined,
            &device,
            Bits::new(96_000),
            &disk(),
            QChoice::MaxBuffers,
        )
        .unwrap();
        assert_eq!(layout.q, 8); // f/2
        assert_eq!(layout.block_bits, Bits::new(8 * 96_000));
        assert!(layout.scattering_upper.get() > 0.0);
        // Sector count covers the block.
        let bytes = layout.block_bits.to_bytes_ceil().get();
        assert!(layout.block_sectors * 512 >= bytes);
        assert!((layout.block_sectors - 1) * 512 < bytes);
    }

    #[test]
    fn exact_choice_respects_device_limit() {
        let device = DisplayDevice::uvc(8);
        let ok = derive_video_layout(
            RetrievalArchitecture::Pipelined,
            &device,
            Bits::new(96_000),
            &disk(),
            QChoice::Exact(4),
        );
        assert!(ok.is_some());
        let too_big = derive_video_layout(
            RetrievalArchitecture::Pipelined,
            &device,
            Bits::new(96_000),
            &disk(),
            QChoice::Exact(5), // f/2 = 4
        );
        assert!(too_big.is_none());
    }

    #[test]
    fn larger_q_gives_larger_scattering_bound() {
        let device = DisplayDevice::uvc(32);
        let d = disk();
        let l1 = derive_video_layout(
            RetrievalArchitecture::Pipelined,
            &device,
            Bits::new(96_000),
            &d,
            QChoice::Exact(2),
        )
        .unwrap();
        let l2 = derive_video_layout(
            RetrievalArchitecture::Pipelined,
            &device,
            Bits::new(96_000),
            &d,
            QChoice::Exact(16),
        )
        .unwrap();
        assert!(l2.scattering_upper > l1.scattering_upper);
    }

    #[test]
    fn overwhelming_stream_yields_none() {
        // HDTV raw frames through a single vintage disk: infeasible.
        let device = DisplayDevice {
            format: strandfs_media::VideoFormat::HDTV,
            ..DisplayDevice::uvc(8)
        };
        let vintage = SimDisk::new(DiskGeometry::vintage_1991(), SeekModel::vintage_1991());
        let layout = derive_video_layout(
            RetrievalArchitecture::Pipelined,
            &device,
            strandfs_media::VideoFormat::HDTV.raw_frame_bits(),
            &vintage,
            QChoice::MaxBuffers,
        );
        assert!(layout.is_none());
    }

    #[test]
    fn sweep_buffering_formula() {
        // l_adj = 5 ms, 1000 cylinders, desired 20 ms -> 250 blocks.
        let b =
            sweep_buffering_blocks(Seconds::from_millis(5.0), 1_000, Seconds::from_millis(20.0));
        assert_eq!(b, 250);
    }
}
