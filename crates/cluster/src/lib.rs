//! A multi-volume strandfs cluster: many MSM volumes behind one master
//! catalog, with replicated strands and volume-failure failover.
//!
//! The single-volume stack (record → admit → play → degrade → recover)
//! treats one disk as the whole world; this crate is the
//! master/chunkserver split that makes "millions of users" meaningful.
//! A [`cluster::Cluster`] owns N members, each a full [`Mrs`] volume
//! with its own `BlockDevice`, fault plan, journal and Eq. 15–18
//! admission; a [`catalog::Catalog`] maps every title to its replicas
//! (volume, strands, compiled schedule); and [`placement::Placement`]
//! decides where recordings land — round-robin, least-loaded by live
//! Eq. 18 slack, or popularity-aware k-replication.
//!
//! The interesting path is failure. A member killed by its fault plan
//! is *detected*, not announced: the read path surfaces a media error,
//! the serving loop marks the volume down, and every stream playing a
//! replicated title fails over mid-playback to a surviving replica —
//! losing zero blocks, with the visible glitch bounded by its
//! read-ahead. Unreplicated streams ride the existing degradation
//! ladder (silence hole → revoke → re-admit). The member later rejoins
//! through `Msm::recover` + fsck, the catalog reconciles what survived,
//! and lost replicas are re-replicated in the background.
//!
//! [`Mrs`]: strandfs_core::mrs::Mrs

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod cluster;
pub mod placement;
pub mod service;

pub use catalog::{Catalog, ReconcileReport, Replica, ReplicaState, StrandLoc, Title, TitleId};
pub use cluster::{Cluster, ClusterConfig, Member, MemberState, RejoinReport, RestoreProgress};
pub use placement::{hypothetical_slack, standard_spec, Placement, VolumeLoad};
pub use service::{
    simulate_cluster, ClusterAction, ClusterPlayback, ClusterReport, ScriptedAction, VolumeStats,
};
