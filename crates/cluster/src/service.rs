//! The cluster service loop: synchronized rounds across member
//! volumes, with mid-playback failover to surviving replicas.
//!
//! Time model: all volumes start round `r` at the same instant `T_r`
//! and serve their pinned streams on their own disks concurrently
//! (each volume has its own clock within the round); `T_{r+1}` is the
//! latest clock when every volume — and the round's background
//! re-replication budget — is done. Deadlines stay coherent across a
//! failover because replica schedules are structurally identical: a
//! stream switching volumes keeps its epochs, completions and item
//! offsets, only the strand/block addresses change.
//!
//! The per-stream bookkeeping (epochs, deadline accounting, the
//! degradation ladder) mirrors `strandfs_sim::playback`, which remains
//! the single-volume reference; the outcome structures are shared so
//! the SLO reports read identically.

use crate::catalog::TitleId;
use crate::cluster::{Cluster, RejoinReport};
use strandfs_core::mrs::PlaySchedule;
use strandfs_core::msm::{BlockFetch, FetchFailure};
use strandfs_core::FsError;
use strandfs_obs::{DegradeAction, Event, ObsSink};
use strandfs_sim::metrics::{NanosSummary, RoundSample, SimReport, StreamOutcome};
use strandfs_units::{Instant, Nanos};

/// Signed deadline margin in nanoseconds: positive = early, negative =
/// late (the same convention as `Event::deadline_margin`).
fn signed_margin(deadline: Instant, done: Instant) -> i64 {
    if done <= deadline {
        (deadline - done).as_nanos() as i64
    } else {
        -((done - deadline).as_nanos() as i64)
    }
}

/// Configuration of a cluster playback run.
#[derive(Clone, Copy, Debug)]
pub struct ClusterPlayback {
    /// Blocks per stream per round (the paper's `k`).
    pub k: u64,
    /// Blocks buffered before a stream's display starts — and the
    /// bound on the glitch a failover can cost a replicated stream.
    pub read_ahead: u64,
    /// Drops a stream tolerates (since admission) before revocation.
    pub revoke_after_drops: u64,
    /// Consecutive fault-free rounds before revoked streams return.
    pub readmit_clean_rounds: u64,
    /// Background re-replication budget per round, in media blocks
    /// (0 disables the restore pass).
    pub restore_blocks_per_round: u64,
    /// Hard bound on simulated rounds (a stuck-scenario backstop).
    pub max_rounds: u64,
}

impl ClusterPlayback {
    /// The standard configuration: read-ahead equal to the round size,
    /// a short ladder, restore off.
    pub fn with_k(k: u64) -> ClusterPlayback {
        ClusterPlayback {
            k,
            read_ahead: k,
            revoke_after_drops: 3,
            readmit_clean_rounds: 2,
            restore_blocks_per_round: 0,
            max_rounds: 100_000,
        }
    }

    /// Enable the per-round background restore budget.
    pub fn restore(mut self, blocks_per_round: u64) -> ClusterPlayback {
        self.restore_blocks_per_round = blocks_per_round;
        self
    }
}

/// A scripted membership change.
#[derive(Clone, Copy, Debug)]
pub enum ClusterAction {
    /// Arm a whole-device fault plan on the member (failure is then
    /// *detected* by the read path, not announced).
    Kill(usize),
    /// Rejoin the member with surviving media (`Msm::recover` + fsck +
    /// catalog reconciliation).
    Rejoin(usize),
    /// Rejoin the member with fresh media (all its replicas lost, to
    /// be re-replicated in the background).
    RejoinWiped(usize),
}

/// A membership change scheduled for the start of a round.
#[derive(Clone, Copy, Debug)]
pub struct ScriptedAction {
    /// The round at whose start the action fires.
    pub at_round: u64,
    /// What happens.
    pub action: ClusterAction,
}

/// Per-volume service statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct VolumeStats {
    /// Media blocks fetched from the volume for playback.
    pub fetched: u64,
    /// Rounds the volume spent marked down.
    pub rounds_down: u64,
}

/// The result of a cluster playback run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// The per-stream outcomes and totals, in viewer order — the same
    /// shape single-volume simulations report, so SLO tooling applies.
    pub sim: SimReport,
    /// Per stream: did its title have ≥ 2 replicas at start?
    pub replicated: Vec<bool>,
    /// Per stream: the longest consecutive run of schedule items that
    /// were dropped or arrived late — the visible glitch length.
    pub miss_bursts: Vec<u64>,
    /// Mid-playback replica switches across all streams.
    pub failovers: u64,
    /// Rejoin reports, in script order.
    pub rejoins: Vec<RejoinReport>,
    /// Media blocks copied by background re-replication.
    pub restored_blocks: u64,
    /// Replicas brought back live by background re-replication.
    pub restored_replicas: u64,
    /// Per-volume service statistics.
    pub volumes: Vec<VolumeStats>,
}

impl ClusterReport {
    /// Blocks dropped by streams of replicated titles (0 is the
    /// failover guarantee).
    pub fn replicated_dropped(&self) -> u64 {
        self.zip_dropped(true)
    }

    /// Blocks dropped by streams of single-replica titles.
    pub fn unreplicated_dropped(&self) -> u64 {
        self.zip_dropped(false)
    }

    fn zip_dropped(&self, replicated: bool) -> u64 {
        self.sim
            .streams
            .iter()
            .zip(&self.replicated)
            .filter(|(_, r)| **r == replicated)
            .map(|(s, _)| s.dropped_blocks)
            .sum()
    }

    /// The worst glitch any replicated stream saw, in schedule items.
    pub fn replicated_miss_burst(&self) -> u64 {
        self.miss_bursts
            .iter()
            .zip(&self.replicated)
            .filter(|(_, r)| **r)
            .map(|(b, _)| *b)
            .max()
            .unwrap_or(0)
    }
}

struct Epoch {
    first_item: usize,
    display_start: Option<Instant>,
    resumed_at: Option<Instant>,
}

/// Per-stream service state; the cluster-side sibling of
/// `playback::StreamState`, extended with the replica pin.
struct CStream {
    title: TitleId,
    replica: usize,
    schedule: PlaySchedule,
    completions: Vec<Instant>,
    fetch_rounds: Vec<u64>,
    dropped: Vec<bool>,
    next: usize,
    read_ahead: u64,
    service_start: Option<Instant>,
    epochs: Vec<Epoch>,
    retries: u64,
    drops_since_admit: u64,
    revoked_at: Option<Instant>,
    revokes: u64,
    recovery_time: Nanos,
    deadline_emitted: usize,
    failovers: u64,
}

impl CStream {
    fn new(title: TitleId, replica: usize, schedule: PlaySchedule, read_ahead: u64) -> CStream {
        let n = schedule.items.len();
        CStream {
            title,
            replica,
            schedule,
            completions: Vec::with_capacity(n),
            fetch_rounds: Vec::with_capacity(n),
            dropped: Vec::with_capacity(n),
            next: 0,
            read_ahead,
            service_start: None,
            epochs: vec![Epoch {
                first_item: 0,
                display_start: None,
                resumed_at: None,
            }],
            retries: 0,
            drops_since_admit: 0,
            revoked_at: None,
            revokes: 0,
            recovery_time: Nanos::ZERO,
            deadline_emitted: 0,
            failovers: 0,
        }
    }

    fn finished(&self) -> bool {
        self.next >= self.schedule.items.len()
    }

    fn deadline_of(&self, j: usize) -> Option<Instant> {
        let ep = self.epochs.iter().rev().find(|e| e.first_item <= j)?;
        let ds = ep.display_start?;
        let base = self.schedule.items[ep.first_item].at;
        Some(ds + (self.schedule.items[j].at - base))
    }

    fn emit_due_deadlines(&mut self, stream: usize, obs: &ObsSink) {
        if !obs.is_enabled() {
            return;
        }
        while self.deadline_emitted < self.completions.len() {
            let j = self.deadline_emitted;
            if self.dropped[j] {
                self.deadline_emitted += 1;
                continue;
            }
            let pos = self
                .epochs
                .iter()
                .rposition(|e| e.first_item <= j)
                .expect("epoch 0 covers every item");
            match self.epochs[pos].display_start {
                Some(_) => {
                    let deadline = self.deadline_of(j).expect("covering epoch has started");
                    let done = self.completions[j];
                    let round = self.fetch_rounds[j];
                    obs.emit(|| Event::Deadline {
                        stream,
                        item: j as u64,
                        round,
                        deadline,
                        completed: done,
                    });
                    self.deadline_emitted += 1;
                }
                None if pos + 1 == self.epochs.len() => break,
                None => self.deadline_emitted += 1,
            }
        }
    }

    /// Longest run of dropped-or-late schedule items (trailing
    /// never-serviced items count as dropped).
    fn miss_burst(&self) -> u64 {
        let serviced = self.completions.len();
        let mut burst = 0u64;
        let mut run = 0u64;
        for j in 0..self.schedule.items.len() {
            let missed = if j >= serviced || self.dropped[j] {
                true
            } else {
                self.deadline_of(j)
                    .map(|d| self.completions[j] > d)
                    .unwrap_or(false)
            };
            if missed {
                run += 1;
                burst = burst.max(run);
            } else {
                run = 0;
            }
        }
        burst
    }

    fn outcome(&self, stream: usize, obs: &ObsSink) -> StreamOutcome {
        let items = &self.schedule.items;
        let serviced = self.completions.len();
        debug_assert!(
            self.completions.windows(2).all(|w| w[0] <= w[1]),
            "fetch completions must be non-decreasing"
        );
        let mut dropped_blocks = (items.len() - serviced) as u64;
        let mut fetched = 0u64;
        let mut violations = 0u64;
        let mut lateness = Vec::new();
        let mut first_violation = None;
        let first_display = self.epochs.first().and_then(|e| e.display_start);
        for (j, item) in items.iter().enumerate().take(serviced) {
            if self.dropped[j] {
                dropped_blocks += 1;
                continue;
            }
            if !item.silence {
                fetched += 1;
            }
            let Some(deadline) = self.deadline_of(j) else {
                continue;
            };
            let done = self.completions[j];
            if j >= self.deadline_emitted {
                obs.emit(|| Event::Deadline {
                    stream,
                    item: j as u64,
                    round: self.fetch_rounds[j],
                    deadline,
                    completed: done,
                });
            }
            if done > deadline {
                violations += 1;
                lateness.push(done - deadline);
                if first_violation.is_none() {
                    if let Some(ds) = first_display {
                        first_violation = Some(deadline - ds);
                    }
                }
            }
        }
        let mut series = Vec::new();
        let mut j = 0;
        while j < serviced {
            let round = self.fetch_rounds[j];
            let mut worst = i64::MAX;
            let mut last = j;
            while last < serviced && self.fetch_rounds[last] == round {
                if !self.dropped[last] {
                    if let Some(deadline) = self.deadline_of(last) {
                        worst = worst.min(signed_margin(deadline, self.completions[last]));
                    }
                }
                last += 1;
            }
            if worst == i64::MAX {
                worst = 0;
            }
            let turn_end = self.completions[last - 1];
            let consumed = match first_display {
                Some(ds) => items.partition_point(|it| ds + it.at <= turn_end),
                None => 0,
            };
            series.push(RoundSample {
                round,
                blocks: (last - j) as u64,
                worst_margin_ns: worst,
                buffered: (last as u64).saturating_sub(consumed as u64),
            });
            j = last;
        }
        let mut max_buffered = 0u64;
        for j in 0..serviced {
            let Some(deadline) = self.deadline_of(j) else {
                continue;
            };
            let fetched_by = self.completions.partition_point(|c| *c <= deadline);
            max_buffered = max_buffered.max((fetched_by as u64).saturating_sub(j as u64));
        }
        StreamOutcome {
            blocks: items.len() as u64,
            fetched,
            violations,
            max_lateness: lateness.iter().copied().max().unwrap_or(Nanos::ZERO),
            lateness: NanosSummary::of(lateness),
            start_latency: match (first_display, self.service_start) {
                (Some(ds), Some(ss)) => ds - ss,
                _ => Nanos::ZERO,
            },
            max_buffered,
            series,
            first_violation,
            dropped_blocks,
            retries: self.retries,
            revokes: self.revokes,
            recovery_time: self.recovery_time,
        }
    }
}

/// The first live replica of `title` on an up member, excluding `not`.
fn find_replica(cluster: &Cluster, title: TitleId, not: Option<usize>) -> Option<usize> {
    cluster
        .catalog()
        .live_replica(title, not, |v| cluster.is_up(v))
}

/// Re-pin a stream to replica `r`: swap in the replica's schedule in
/// place, keeping every completion, epoch and item offset.
fn switch_schedule(cluster: &Cluster, s: &mut CStream, r: usize) -> Result<(), FsError> {
    let rep = &cluster.catalog().title(s.title).replicas[r];
    if rep.schedule.items.len() != s.schedule.items.len() {
        return Err(FsError::InvalidScenario {
            reason: "replica schedules are not structurally identical",
        });
    }
    s.schedule = rep.schedule.clone();
    s.replica = r;
    Ok(())
}

/// Simulate cluster playback: one viewer stream per entry of
/// `viewers` (each a catalog title), with `script` driving member
/// kills and rejoins at round boundaries.
///
/// Viewers of a multi-replica title are spread across its replicas
/// round-robin. Install a shared sink via [`Cluster::set_obs`] before
/// calling to observe the whole cluster in one monitor.
pub fn simulate_cluster(
    cluster: &mut Cluster,
    viewers: &[TitleId],
    script: &[ScriptedAction],
    cfg: &ClusterPlayback,
) -> Result<ClusterReport, FsError> {
    let obs = cluster.obs();
    let volumes = cluster.members().len();
    let replicated: Vec<bool> = viewers
        .iter()
        .map(|&t| cluster.catalog().title(t).replicas.len() >= 2)
        .collect();
    let mut streams: Vec<CStream> = Vec::with_capacity(viewers.len());
    for (i, &title) in viewers.iter().enumerate() {
        let nrep = cluster.catalog().title(title).replicas.len();
        let start = i % nrep.max(1);
        let replica = (0..nrep)
            .map(|d| (start + d) % nrep)
            .find(|&r| {
                let rep = &cluster.catalog().title(title).replicas[r];
                rep.state == crate::catalog::ReplicaState::Live && cluster.is_up(rep.volume)
            })
            .ok_or(FsError::InvalidScenario {
                reason: "viewer title has no live replica on an up member",
            })?;
        let schedule = cluster.catalog().title(title).replicas[replica]
            .schedule
            .clone();
        streams.push(CStream::new(
            title,
            replica,
            schedule,
            cfg.read_ahead.max(1),
        ));
    }

    let mut vol_t: Vec<Instant> = vec![Instant::EPOCH; volumes];
    let mut busy_mark: Vec<Nanos> = (0..volumes)
        .map(|v| cluster.members()[v].mrs().msm().disk().stats().busy_time())
        .collect();
    let mut disk_busy = Nanos::ZERO;
    let mut stats = vec![VolumeStats::default(); volumes];
    let mut rejoins = Vec::new();
    let mut applied = vec![false; script.len()];
    let mut failovers = 0u64;
    let mut restored_blocks = 0u64;
    let mut restored_replicas = 0u64;
    let mut t = Instant::EPOCH;
    let mut round = 0u64;
    let mut clean_streak = 0u64;
    let k = cfg.k.max(1);

    loop {
        // Scripted membership changes due at this round boundary.
        for (si, a) in script.iter().enumerate() {
            if applied[si] || a.at_round > round {
                continue;
            }
            applied[si] = true;
            match a.action {
                ClusterAction::Kill(v) => {
                    cluster.kill(v);
                }
                ClusterAction::Rejoin(v) => {
                    rejoins.push(cluster.rejoin(v, t)?);
                    // Recovery I/O is mount work, not playback service.
                    busy_mark[v] = cluster.members()[v].mrs().msm().disk().stats().busy_time();
                }
                ClusterAction::RejoinWiped(v) => {
                    rejoins.push(cluster.rejoin_wiped(v));
                    busy_mark[v] = cluster.members()[v].mrs().msm().disk().stats().busy_time();
                }
            }
        }
        // Ladder re-admission: the fault window stayed clear long
        // enough AND the stream has somewhere live to play from.
        if clean_streak >= cfg.readmit_clean_rounds {
            for (idx, s) in streams.iter_mut().enumerate() {
                if s.revoked_at.is_none() || s.finished() {
                    continue;
                }
                let Some(r) = find_replica(cluster, s.title, None) else {
                    continue;
                };
                if r != s.replica {
                    switch_schedule(cluster, s, r)?;
                }
                let since = s.revoked_at.take().expect("checked above");
                s.recovery_time += t - since;
                s.drops_since_admit = 0;
                s.epochs.push(Epoch {
                    first_item: s.next,
                    display_start: None,
                    resumed_at: Some(t),
                });
                let item = s.next as u64;
                obs.emit(|| Event::Degrade {
                    stream: idx,
                    round,
                    item,
                    action: DegradeAction::Readmit,
                    at: t,
                });
            }
        }
        let active: Vec<usize> = streams
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.finished() && s.revoked_at.is_none())
            .map(|(i, _)| i)
            .collect();
        let script_pending = applied.iter().any(|done| !done);
        let restore_pending = cfg.restore_blocks_per_round > 0 && cluster.restorable_lost();
        if active.is_empty() {
            let revoked: Vec<&CStream> = streams
                .iter()
                .filter(|s| !s.finished() && s.revoked_at.is_some())
                .collect();
            let can_return = revoked
                .iter()
                .any(|s| find_replica(cluster, s.title, None).is_some());
            if !script_pending && !restore_pending && (revoked.is_empty() || !can_return) {
                break;
            }
            // Idle round: no I/O, but revoked viewers' displays sit
            // frozen while it passes — advance the clock so recovery
            // accounting sees the outage.
            let min_dur = revoked
                .iter()
                .map(|s| s.schedule.items[s.next].duration)
                .min()
                .unwrap_or(Nanos::from_millis(100));
            let advanced = Nanos::from_nanos(k.saturating_mul(min_dur.as_nanos()));
            obs.emit(|| Event::RoundIdle {
                round,
                at: t,
                advanced,
            });
            t += advanced;
            if cfg.restore_blocks_per_round > 0 {
                let p = cluster.re_replicate(t, cfg.restore_blocks_per_round)?;
                restored_blocks += p.copied_blocks;
                restored_replicas += p.completed_replicas;
                t = t.max(p.finished_at);
            }
            clean_streak += 1;
            round += 1;
            if round >= cfg.max_rounds {
                break;
            }
            continue;
        }
        obs.emit(|| Event::RoundStart {
            round,
            active: active.len(),
            k,
            at: t,
        });
        for item in vol_t.iter_mut() {
            *item = t;
        }
        let mut round_faults = false;
        for &idx in &active {
            let s = &mut streams[idx];
            if s.service_start.is_none() {
                s.service_start = Some(t);
            }
            let mut vol = cluster.catalog().title(s.title).replicas[s.replica].volume;
            let turn_begin = vol_t[vol];
            let mut turn_blocks = 0u64;
            let mut revoked_now = false;
            for _ in 0..k {
                if s.finished() || revoked_now {
                    break;
                }
                let j = s.next;
                if s.schedule.items[j].silence {
                    s.completions.push(vol_t[vol]);
                    s.dropped.push(false);
                } else {
                    // Fetch, failing over across replicas on a media
                    // error — the glitch stays bounded by read-ahead
                    // because the re-fetch happens in the same round.
                    let mut fetched = false;
                    let mut fail_at = vol_t[vol];
                    for _attempt in 0..=volumes {
                        if cluster.is_up(vol) {
                            let item = s.schedule.items[j];
                            let issue = vol_t[vol].max(fail_at);
                            let deadline = s.deadline_of(j);
                            match cluster
                                .member_mut(vol)
                                .mrs_mut()
                                .msm_mut()
                                .read_block_resilient_timed(
                                    item.strand,
                                    item.block,
                                    issue,
                                    item.duration,
                                    deadline,
                                )? {
                                BlockFetch::Silence => {
                                    return Err(FsError::InvalidScenario {
                                        reason:
                                            "non-silence schedule item resolves to a silence hole",
                                    })
                                }
                                BlockFetch::Data { op, retries, .. } => {
                                    vol_t[vol] = op.completed;
                                    if retries > 0 {
                                        round_faults = true;
                                        s.retries += retries as u64;
                                    }
                                    s.completions.push(vol_t[vol]);
                                    s.dropped.push(false);
                                    stats[vol].fetched += 1;
                                    fetched = true;
                                    break;
                                }
                                BlockFetch::Failed {
                                    reason,
                                    at,
                                    retries,
                                } => {
                                    round_faults = true;
                                    s.retries += retries as u64;
                                    fail_at = fail_at.max(at);
                                    vol_t[vol] = vol_t[vol].max(at);
                                    match reason {
                                        FetchFailure::Media => {
                                            // Volume-failure detection:
                                            // the read path, not an
                                            // oracle.
                                            cluster.mark_down(vol);
                                        }
                                        // The deadline is gone on every
                                        // volume — drop, don't failover.
                                        FetchFailure::Abandoned => break,
                                        FetchFailure::RetriesExhausted => {}
                                    }
                                }
                            }
                        }
                        match find_replica(cluster, s.title, Some(s.replica)) {
                            Some(r) => {
                                switch_schedule(cluster, s, r)?;
                                vol = cluster.catalog().title(s.title).replicas[r].volume;
                                s.failovers += 1;
                                failovers += 1;
                            }
                            None => break,
                        }
                    }
                    if !fetched {
                        let drop_at = vol_t[vol].max(fail_at);
                        s.completions.push(drop_at);
                        s.dropped.push(true);
                        s.drops_since_admit += 1;
                        round_faults = true;
                        obs.emit(|| Event::Degrade {
                            stream: idx,
                            round,
                            item: j as u64,
                            action: DegradeAction::DropBlock,
                            at: drop_at,
                        });
                        if s.drops_since_admit >= cfg.revoke_after_drops.max(1) {
                            s.revoked_at = Some(drop_at);
                            s.revokes += 1;
                            revoked_now = true;
                            obs.emit(|| Event::Degrade {
                                stream: idx,
                                round,
                                item: j as u64,
                                action: DegradeAction::Revoke,
                                at: drop_at,
                            });
                        }
                    }
                }
                s.fetch_rounds.push(round);
                s.next += 1;
                turn_blocks += 1;
                let finished = s.finished();
                let read_ahead = s.read_ahead;
                let now = vol_t[vol];
                let ep = s.epochs.last_mut().expect("epochs never empty");
                if ep.display_start.is_none()
                    && ((s.next - ep.first_item) as u64 >= read_ahead || finished)
                {
                    ep.display_start = Some(now);
                    let anchor = ep.resumed_at.or(s.service_start).unwrap_or(now);
                    obs.emit(|| Event::DisplayStart {
                        stream: idx,
                        at: now,
                        latency: now - anchor,
                    });
                }
            }
            s.emit_due_deadlines(idx, &obs);
            let end = vol_t[vol];
            obs.emit(|| Event::StreamService {
                stream: idx,
                round,
                begin: turn_begin,
                end,
                blocks: turn_blocks,
            });
        }
        // The cluster round ends when the slowest volume — and the
        // round's background restore budget — is done.
        let mut t_next = vol_t.iter().copied().max().unwrap_or(t);
        if cfg.restore_blocks_per_round > 0 {
            let p = cluster.re_replicate(t_next, cfg.restore_blocks_per_round)?;
            restored_blocks += p.copied_blocks;
            restored_replicas += p.completed_replicas;
            t_next = t_next.max(p.finished_at);
        }
        obs.emit(|| Event::RoundEnd { round, at: t_next });
        t = t_next;
        for v in 0..volumes {
            let busy = cluster.members()[v].mrs().msm().disk().stats().busy_time();
            disk_busy += busy - busy_mark[v];
            busy_mark[v] = busy;
            if !cluster.is_up(v) {
                stats[v].rounds_down += 1;
            }
        }
        if round_faults {
            clean_streak = 0;
        } else {
            clean_streak += 1;
        }
        round += 1;
        if round >= cfg.max_rounds {
            break;
        }
    }

    Ok(ClusterReport {
        sim: SimReport {
            streams: streams
                .iter()
                .enumerate()
                .map(|(i, s)| s.outcome(i, &obs))
                .collect(),
            disk_busy,
            rounds: round,
        },
        replicated,
        miss_bursts: streams.iter().map(|s| s.miss_burst()).collect(),
        failovers: streams
            .iter()
            .map(|s| s.failovers)
            .sum::<u64>()
            .max(failovers),
        rejoins,
        restored_blocks,
        restored_replicas,
        volumes: stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, MemberState};
    use crate::placement::Placement;
    use strandfs_sim::scenario::ClipSpec;

    fn cluster(volumes: usize, base_replicas: usize) -> Cluster {
        Cluster::new(ClusterConfig {
            volumes,
            placement: Placement::RoundRobin,
            base_replicas,
            seed: 42,
        })
        .expect("cluster")
    }

    #[test]
    fn clean_cluster_plays_every_stream_continuously() {
        let mut c = cluster(2, 1);
        let a = c
            .ingest("a", &ClipSpec::video_seconds(1.0).with_seed(1), 0.0)
            .unwrap();
        let b = c
            .ingest("b", &ClipSpec::video_seconds(1.0).with_seed(2), 0.0)
            .unwrap();
        let report =
            simulate_cluster(&mut c, &[a, b], &[], &ClusterPlayback::with_k(3)).expect("sim");
        assert!(report.sim.all_continuous());
        assert_eq!(report.sim.total_dropped(), 0);
        assert_eq!(report.failovers, 0);
        // Each title landed on its own volume; both volumes served.
        assert!(report.volumes.iter().all(|v| v.fetched > 0));
    }

    #[test]
    fn replicated_stream_survives_a_volume_kill_without_losing_blocks() {
        let mut c = cluster(2, 2);
        let id = c
            .ingest("hot", &ClipSpec::video_seconds(2.0).with_seed(5), 1.0)
            .unwrap();
        let script = [ScriptedAction {
            at_round: 2,
            action: ClusterAction::Kill(0),
        }];
        let report =
            simulate_cluster(&mut c, &[id, id], &script, &ClusterPlayback::with_k(3)).expect("sim");
        assert_eq!(
            report.replicated_dropped(),
            0,
            "failover must lose 0 blocks"
        );
        assert!(report.failovers >= 1, "the kill must force a failover");
        // The glitch is bounded by the read-ahead.
        assert!(
            report.replicated_miss_burst() <= 3,
            "miss burst {} exceeds read-ahead",
            report.replicated_miss_burst()
        );
        // Detection happened through the read path.
        assert_eq!(c.members()[0].state(), MemberState::Down);
        assert!(report.volumes[0].rounds_down > 0);
    }

    #[test]
    fn unreplicated_stream_rides_the_ladder_and_returns_after_rejoin() {
        let mut c = cluster(2, 1);
        let a = c
            .ingest("solo", &ClipSpec::video_seconds(2.0).with_seed(3), 0.0)
            .unwrap();
        // Volume 0 holds "solo"; kill it early, rejoin later.
        let script = [
            ScriptedAction {
                at_round: 1,
                action: ClusterAction::Kill(0),
            },
            ScriptedAction {
                at_round: 6,
                action: ClusterAction::Rejoin(0),
            },
        ];
        let mut cfg = ClusterPlayback::with_k(3);
        cfg.revoke_after_drops = 2;
        cfg.readmit_clean_rounds = 1;
        let report = simulate_cluster(&mut c, &[a], &script, &cfg).expect("sim");
        let s = &report.sim.streams[0];
        assert!(s.dropped_blocks > 0, "the unreplicated stream must drop");
        assert!(s.revokes >= 1, "the ladder must revoke it");
        assert!(
            s.recovery_time > Nanos::ZERO,
            "revocation must cost recovery time"
        );
        // After the rejoin it finished its schedule.
        assert_eq!(s.blocks, s.dropped_blocks + report.sim.streams[0].fetched);
        assert_eq!(report.rejoins.len(), 1);
        assert_eq!(report.rejoins[0].fsck_findings, 0);
        assert_eq!(report.rejoins[0].reconcile.lost, 0);
    }

    #[test]
    fn wiped_member_is_rebuilt_in_the_background_during_service() {
        let mut c = cluster(2, 2);
        let id = c
            .ingest("hot", &ClipSpec::video_seconds(2.0).with_seed(9), 1.0)
            .unwrap();
        let script = [
            ScriptedAction {
                at_round: 1,
                action: ClusterAction::Kill(0),
            },
            ScriptedAction {
                at_round: 3,
                action: ClusterAction::RejoinWiped(0),
            },
        ];
        // Restore budget small enough for the round slack to absorb —
        // restore I/O extends rounds, and a saturating budget would
        // push playback past its deadlines.
        let cfg = ClusterPlayback::with_k(3).restore(2);
        let report = simulate_cluster(&mut c, &[id], &script, &cfg).expect("sim");
        assert_eq!(report.replicated_dropped(), 0);
        assert!(report.restored_blocks > 0, "restore must copy blocks");
        assert_eq!(report.restored_replicas, 1);
        // The rebuilt replica is live and fsck finds the member clean.
        assert!(!c.restorable_lost());
        assert!(c
            .catalog()
            .title(id)
            .replicas
            .iter()
            .all(|r| r.state == crate::catalog::ReplicaState::Live));
        assert!(c.fsck_member(0, Instant::from_nanos(u64::MAX / 4)).clean());
    }
}
