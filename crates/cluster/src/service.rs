//! The cluster service loop: synchronized rounds across member
//! volumes, with mid-playback failover to surviving replicas.
//!
//! Time model: all volumes start round `r` at the same instant `T_r`
//! and serve their pinned streams on their own disks concurrently
//! (each volume has its own clock within the round); `T_{r+1}` is the
//! latest clock when every volume — and the round's background
//! re-replication budget — is done. Deadlines stay coherent across a
//! failover because replica schedules are structurally identical: a
//! stream switching volumes keeps its epochs, completions and item
//! offsets, only the strand/block addresses change.
//!
//! The per-stream bookkeeping (epochs, deadline accounting, the
//! degradation ladder) mirrors `strandfs_sim::playback`, which remains
//! the single-volume reference; the outcome structures are shared so
//! the SLO reports read identically.

use crate::catalog::TitleId;
use crate::cluster::{Cluster, RejoinReport};
use strandfs_core::mrs::PlaySchedule;
use strandfs_core::msm::{BlockFetch, FetchFailure};
use strandfs_core::FsError;
use strandfs_obs::{DegradeAction, Event, ObsSink};
use strandfs_sim::metrics::{NanosSummary, RoundSample, SimReport, StreamOutcome};
use strandfs_units::{Instant, Nanos};

/// Signed deadline margin in nanoseconds: positive = early, negative =
/// late (the same convention as `Event::deadline_margin`).
fn signed_margin(deadline: Instant, done: Instant) -> i64 {
    if done <= deadline {
        (deadline - done).as_nanos() as i64
    } else {
        -((done - deadline).as_nanos() as i64)
    }
}

/// Configuration of a cluster playback run.
#[derive(Clone, Copy, Debug)]
pub struct ClusterPlayback {
    /// Blocks per stream per round (the paper's `k`).
    pub k: u64,
    /// Blocks buffered before a stream's display starts — and the
    /// bound on the glitch a failover can cost a replicated stream.
    pub read_ahead: u64,
    /// Drops a stream tolerates (since admission) before revocation.
    pub revoke_after_drops: u64,
    /// Consecutive fault-free rounds before revoked streams return.
    pub readmit_clean_rounds: u64,
    /// Background re-replication budget per round, in media blocks
    /// (0 disables the restore pass).
    pub restore_blocks_per_round: u64,
    /// Background scrub budget per volume per round, in blocks
    /// (0 disables the scrubber). Scrub probes verify checksum stamps
    /// in place and are charged against spare round slack only — they
    /// never extend a round or move the disk arm.
    pub scrub_blocks_per_round: u64,
    /// Race a replica when a primary fetch exceeds its block's play
    /// duration (the fail-slow defense): the hedge read issues at the
    /// threshold and the earlier completion wins.
    pub hedge: bool,
    /// Consecutive rounds a volume fires hedges before it is
    /// quarantined — taken out of placement and serving while it is
    /// probed (0 disables quarantine).
    pub quarantine_after_rounds: u64,
    /// Consecutive on-time probes before a quarantined volume is
    /// re-admitted.
    pub readmit_probe_rounds: u64,
    /// Audit every payload served to a viewer against its checksum
    /// stamp (an untimed oracle for experiments; counts what silent
    /// corruption actually reached the audience).
    pub audit_integrity: bool,
    /// Hard bound on simulated rounds (a stuck-scenario backstop).
    pub max_rounds: u64,
}

impl ClusterPlayback {
    /// The standard configuration: read-ahead equal to the round size,
    /// a short ladder, restore off.
    pub fn with_k(k: u64) -> ClusterPlayback {
        ClusterPlayback {
            k,
            read_ahead: k,
            revoke_after_drops: 3,
            readmit_clean_rounds: 2,
            restore_blocks_per_round: 0,
            scrub_blocks_per_round: 0,
            hedge: false,
            quarantine_after_rounds: 3,
            readmit_probe_rounds: 2,
            audit_integrity: false,
            max_rounds: 100_000,
        }
    }

    /// Enable the per-round background restore budget.
    pub fn restore(mut self, blocks_per_round: u64) -> ClusterPlayback {
        self.restore_blocks_per_round = blocks_per_round;
        self
    }

    /// Enable the slack-budgeted background scrubber.
    pub fn scrub(mut self, blocks_per_round: u64) -> ClusterPlayback {
        self.scrub_blocks_per_round = blocks_per_round;
        self
    }

    /// Enable hedged reads against fail-slow members.
    pub fn hedged(mut self) -> ClusterPlayback {
        self.hedge = true;
        self
    }

    /// Enable the served-payload integrity audit.
    pub fn audited(mut self) -> ClusterPlayback {
        self.audit_integrity = true;
        self
    }
}

/// A scripted membership change.
#[derive(Clone, Copy, Debug)]
pub enum ClusterAction {
    /// Arm a whole-device fault plan on the member (failure is then
    /// *detected* by the read path, not announced).
    Kill(usize),
    /// Rejoin the member with surviving media (`Msm::recover` + fsck +
    /// catalog reconciliation).
    Rejoin(usize),
    /// Rejoin the member with fresh media (all its replicas lost, to
    /// be re-replicated in the background).
    RejoinWiped(usize),
}

/// A membership change scheduled for the start of a round.
#[derive(Clone, Copy, Debug)]
pub struct ScriptedAction {
    /// The round at whose start the action fires.
    pub at_round: u64,
    /// What happens.
    pub action: ClusterAction,
}

/// Per-volume service statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct VolumeStats {
    /// Media blocks fetched from the volume for playback.
    pub fetched: u64,
    /// Rounds the volume spent marked down.
    pub rounds_down: u64,
    /// Blocks the background scrubber verified on the volume.
    pub scrubbed: u64,
    /// Hedged reads fired because this volume's fetch ran slow.
    pub hedged: u64,
}

/// The result of a cluster playback run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// The per-stream outcomes and totals, in viewer order — the same
    /// shape single-volume simulations report, so SLO tooling applies.
    pub sim: SimReport,
    /// Per stream: did its title have ≥ 2 replicas at start?
    pub replicated: Vec<bool>,
    /// Per stream: the longest consecutive run of schedule items that
    /// were dropped or arrived late — the visible glitch length.
    pub miss_bursts: Vec<u64>,
    /// Mid-playback replica switches across all streams.
    pub failovers: u64,
    /// Rejoin reports, in script order.
    pub rejoins: Vec<RejoinReport>,
    /// Media blocks copied by background re-replication.
    pub restored_blocks: u64,
    /// Replicas brought back live by background re-replication.
    pub restored_replicas: u64,
    /// Blocks the background scrubber verified.
    pub scrubbed_blocks: u64,
    /// Corrupt blocks the scrubber detected.
    pub scrub_corrupt: u64,
    /// Corrupt blocks rewritten in place from a clean replica.
    pub scrub_repaired: u64,
    /// Replicas the scrubber invalidated for re-replication (the
    /// fallback when no in-place repair source exists).
    pub scrub_invalidated: u64,
    /// Corrupt blocks a viewer read detected and repaired in place via
    /// read-around (served from a clean replica, rewritten locally).
    pub read_repairs: u64,
    /// Payloads served to viewers that failed the integrity audit
    /// (only counted with `audit_integrity`).
    pub corrupt_served: u64,
    /// Hedged reads issued.
    pub hedges: u64,
    /// Hedged reads the replica won.
    pub hedge_wins: u64,
    /// Members quarantined for breaching the read-latency SLO.
    pub quarantines: u64,
    /// Quarantined members re-admitted after clean probes.
    pub quarantine_readmits: u64,
    /// Per-volume service statistics.
    pub volumes: Vec<VolumeStats>,
}

impl ClusterReport {
    /// Blocks dropped by streams of replicated titles (0 is the
    /// failover guarantee).
    pub fn replicated_dropped(&self) -> u64 {
        self.zip_dropped(true)
    }

    /// Blocks dropped by streams of single-replica titles.
    pub fn unreplicated_dropped(&self) -> u64 {
        self.zip_dropped(false)
    }

    fn zip_dropped(&self, replicated: bool) -> u64 {
        self.sim
            .streams
            .iter()
            .zip(&self.replicated)
            .filter(|(_, r)| **r == replicated)
            .map(|(s, _)| s.dropped_blocks)
            .sum()
    }

    /// The worst glitch any replicated stream saw, in schedule items.
    pub fn replicated_miss_burst(&self) -> u64 {
        self.miss_bursts
            .iter()
            .zip(&self.replicated)
            .filter(|(_, r)| **r)
            .map(|(b, _)| *b)
            .max()
            .unwrap_or(0)
    }
}

struct Epoch {
    first_item: usize,
    display_start: Option<Instant>,
    resumed_at: Option<Instant>,
}

/// Per-stream service state; the cluster-side sibling of
/// `playback::StreamState`, extended with the replica pin.
struct CStream {
    title: TitleId,
    replica: usize,
    schedule: PlaySchedule,
    completions: Vec<Instant>,
    fetch_rounds: Vec<u64>,
    dropped: Vec<bool>,
    next: usize,
    read_ahead: u64,
    service_start: Option<Instant>,
    epochs: Vec<Epoch>,
    retries: u64,
    drops_since_admit: u64,
    revoked_at: Option<Instant>,
    revokes: u64,
    recovery_time: Nanos,
    deadline_emitted: usize,
    failovers: u64,
    /// The stream's last fetch completion: later fetches cannot
    /// complete before it, even when they land on a volume whose clock
    /// trails (e.g. after a read-around serve from a busier replica).
    serve_floor: Instant,
}

impl CStream {
    fn new(title: TitleId, replica: usize, schedule: PlaySchedule, read_ahead: u64) -> CStream {
        let n = schedule.items.len();
        CStream {
            title,
            replica,
            schedule,
            completions: Vec::with_capacity(n),
            fetch_rounds: Vec::with_capacity(n),
            dropped: Vec::with_capacity(n),
            next: 0,
            read_ahead,
            service_start: None,
            epochs: vec![Epoch {
                first_item: 0,
                display_start: None,
                resumed_at: None,
            }],
            retries: 0,
            drops_since_admit: 0,
            revoked_at: None,
            revokes: 0,
            recovery_time: Nanos::ZERO,
            deadline_emitted: 0,
            failovers: 0,
            serve_floor: Instant::from_nanos(0),
        }
    }

    fn finished(&self) -> bool {
        self.next >= self.schedule.items.len()
    }

    fn deadline_of(&self, j: usize) -> Option<Instant> {
        let ep = self.epochs.iter().rev().find(|e| e.first_item <= j)?;
        let ds = ep.display_start?;
        let base = self.schedule.items[ep.first_item].at;
        Some(ds + (self.schedule.items[j].at - base))
    }

    fn emit_due_deadlines(&mut self, stream: usize, obs: &ObsSink) {
        if !obs.is_enabled() {
            return;
        }
        while self.deadline_emitted < self.completions.len() {
            let j = self.deadline_emitted;
            if self.dropped[j] {
                self.deadline_emitted += 1;
                continue;
            }
            let pos = self
                .epochs
                .iter()
                .rposition(|e| e.first_item <= j)
                .expect("epoch 0 covers every item");
            match self.epochs[pos].display_start {
                Some(_) => {
                    let deadline = self.deadline_of(j).expect("covering epoch has started");
                    let done = self.completions[j];
                    let round = self.fetch_rounds[j];
                    obs.emit(|| Event::Deadline {
                        stream,
                        item: j as u64,
                        round,
                        deadline,
                        completed: done,
                    });
                    self.deadline_emitted += 1;
                }
                None if pos + 1 == self.epochs.len() => break,
                None => self.deadline_emitted += 1,
            }
        }
    }

    /// Longest run of dropped-or-late schedule items (trailing
    /// never-serviced items count as dropped).
    fn miss_burst(&self) -> u64 {
        let serviced = self.completions.len();
        let mut burst = 0u64;
        let mut run = 0u64;
        for j in 0..self.schedule.items.len() {
            let missed = if j >= serviced || self.dropped[j] {
                true
            } else {
                self.deadline_of(j)
                    .map(|d| self.completions[j] > d)
                    .unwrap_or(false)
            };
            if missed {
                run += 1;
                burst = burst.max(run);
            } else {
                run = 0;
            }
        }
        burst
    }

    fn outcome(&self, stream: usize, obs: &ObsSink) -> StreamOutcome {
        let items = &self.schedule.items;
        let serviced = self.completions.len();
        debug_assert!(
            self.completions.windows(2).all(|w| w[0] <= w[1]),
            "fetch completions must be non-decreasing"
        );
        let mut dropped_blocks = (items.len() - serviced) as u64;
        let mut fetched = 0u64;
        let mut violations = 0u64;
        let mut lateness = Vec::new();
        let mut first_violation = None;
        let first_display = self.epochs.first().and_then(|e| e.display_start);
        for (j, item) in items.iter().enumerate().take(serviced) {
            if self.dropped[j] {
                dropped_blocks += 1;
                continue;
            }
            if !item.silence {
                fetched += 1;
            }
            let Some(deadline) = self.deadline_of(j) else {
                continue;
            };
            let done = self.completions[j];
            if j >= self.deadline_emitted {
                obs.emit(|| Event::Deadline {
                    stream,
                    item: j as u64,
                    round: self.fetch_rounds[j],
                    deadline,
                    completed: done,
                });
            }
            if done > deadline {
                violations += 1;
                lateness.push(done - deadline);
                if first_violation.is_none() {
                    if let Some(ds) = first_display {
                        first_violation = Some(deadline - ds);
                    }
                }
            }
        }
        let mut series = Vec::new();
        let mut j = 0;
        while j < serviced {
            let round = self.fetch_rounds[j];
            let mut worst = i64::MAX;
            let mut last = j;
            while last < serviced && self.fetch_rounds[last] == round {
                if !self.dropped[last] {
                    if let Some(deadline) = self.deadline_of(last) {
                        worst = worst.min(signed_margin(deadline, self.completions[last]));
                    }
                }
                last += 1;
            }
            if worst == i64::MAX {
                worst = 0;
            }
            let turn_end = self.completions[last - 1];
            let consumed = match first_display {
                Some(ds) => items.partition_point(|it| ds + it.at <= turn_end),
                None => 0,
            };
            series.push(RoundSample {
                round,
                blocks: (last - j) as u64,
                worst_margin_ns: worst,
                buffered: (last as u64).saturating_sub(consumed as u64),
            });
            j = last;
        }
        let mut max_buffered = 0u64;
        for j in 0..serviced {
            let Some(deadline) = self.deadline_of(j) else {
                continue;
            };
            let fetched_by = self.completions.partition_point(|c| *c <= deadline);
            max_buffered = max_buffered.max((fetched_by as u64).saturating_sub(j as u64));
        }
        StreamOutcome {
            blocks: items.len() as u64,
            fetched,
            violations,
            max_lateness: lateness.iter().copied().max().unwrap_or(Nanos::ZERO),
            lateness: NanosSummary::of(lateness),
            start_latency: match (first_display, self.service_start) {
                (Some(ds), Some(ss)) => ds - ss,
                _ => Nanos::ZERO,
            },
            max_buffered,
            series,
            first_violation,
            dropped_blocks,
            retries: self.retries,
            revokes: self.revokes,
            recovery_time: self.recovery_time,
        }
    }
}

/// The first live replica of `title` on an up, unquarantined member,
/// excluding `not`.
fn find_replica(
    cluster: &Cluster,
    quarantined: &[bool],
    title: TitleId,
    not: Option<usize>,
) -> Option<usize> {
    cluster
        .catalog()
        .live_replica(title, not, |v| cluster.is_up(v) && !quarantined[v])
}

/// Any live replica on an up member — the fallback when every healthy
/// copy is quarantined (serving slow beats not serving at all).
fn find_replica_any(cluster: &Cluster, title: TitleId, not: Option<usize>) -> Option<usize> {
    cluster
        .catalog()
        .live_replica(title, not, |v| cluster.is_up(v))
}

/// One scrub probe on volume `v`: verify the next stamped block under
/// the cursor `(strand raw id, block)`. Verification re-hashes the
/// stored payload in place — no device access, no arm movement, no
/// virtual time of its own (the caller charges slack). Returns `None`
/// when the cursor wrapped: one full pass over the member's strands is
/// complete.
fn scrub_step(
    cluster: &Cluster,
    v: usize,
    cursor: &mut (u64, u64),
) -> Option<(strandfs_core::StrandId, u64, bool)> {
    loop {
        let msm = cluster.members()[v].mrs().msm();
        let ids = msm.strand_ids();
        let Some(id) = ids.iter().copied().find(|id| id.raw() >= cursor.0) else {
            *cursor = (0, 0);
            return None;
        };
        if id.raw() != cursor.0 {
            *cursor = (id.raw(), 0);
        }
        let Ok(strand) = msm.strand(id) else {
            *cursor = (id.raw() + 1, 0);
            continue;
        };
        if cursor.1 >= strand.block_count() {
            *cursor = (id.raw() + 1, 0);
            continue;
        }
        let n = cursor.1;
        cursor.1 += 1;
        match msm.check_block_sum(id, n) {
            Ok(Some(ok)) => return Some((id, n, ok)),
            // Silence holes and unstamped blocks verify nothing and
            // cost no slack; keep walking within this budget unit.
            _ => continue,
        }
    }
}

/// What the scrubber did about a corrupt block.
enum ScrubRepair {
    /// The block was rewritten in place from a clean replica.
    Repaired,
    /// In-place repair was impossible; the whole replica was
    /// invalidated for background re-replication, re-pinning `switched`
    /// viewer streams off it.
    Invalidated { switched: u64 },
    /// No live copy to repair from: detected, not repairable.
    Skipped,
}

/// Scrub found a corrupt block on volume `v`: repair it surgically by
/// fetching the true payload of the same block from a clean live
/// replica and rewriting the corrupt extent in place — viewers stay
/// pinned, nothing moves. Only when no source payload hashes to the
/// stamped checksum (a diverged or doubly-corrupt copy) does the
/// repair fall back to invalidating the whole replica so background
/// re-replication rebuilds it — the same path a wiped rejoin uses.
fn repair_corrupt_block(
    cluster: &mut Cluster,
    quarantined: &[bool],
    streams: &mut [CStream],
    vol_t: &mut [Instant],
    v: usize,
    strand: strandfs_core::StrandId,
    block: u64,
) -> Result<ScrubRepair, FsError> {
    let mut owner = None;
    for (t, title) in cluster.catalog().titles().iter().enumerate() {
        for (i, r) in title.replicas.iter().enumerate() {
            if r.volume == v
                && r.state == crate::catalog::ReplicaState::Live
                && r.strands.iter().any(|l| l.strand == strand)
            {
                let slot = r
                    .strands
                    .iter()
                    .position(|l| l.strand == strand)
                    .expect("just matched");
                owner = Some((t, i, slot));
            }
        }
    }
    let Some((title, rep, slot)) = owner else {
        return Ok(ScrubRepair::Skipped);
    };
    // Candidate sources: every other live copy on an up member,
    // healthy ones before quarantined ones.
    let mut sources: Vec<(usize, strandfs_core::StrandId)> = cluster
        .catalog()
        .title(title)
        .replicas
        .iter()
        .enumerate()
        .filter(|&(r, rp)| {
            r != rep && rp.state == crate::catalog::ReplicaState::Live && cluster.is_up(rp.volume)
        })
        .map(|(_, rp)| (rp.volume, rp.strands[slot].strand))
        .collect();
    if sources.is_empty() {
        return Ok(ScrubRepair::Skipped);
    }
    sources.sort_by_key(|&(sv, _)| quarantined[sv]);
    for (sv, src_strand) in sources {
        // Refuse a source whose own copy of the block fails (or cannot
        // pass) verification — repair must never launder corruption.
        let src = cluster.members()[sv].mrs().msm();
        if !matches!(src.check_block_sum(src_strand, block), Ok(Some(true))) {
            continue;
        }
        let fetched = cluster
            .member_mut(sv)
            .mrs_mut()
            .msm_mut()
            .read_block(src_strand, block, vol_t[sv]);
        let Ok((Some(payload), Some(src_op))) = fetched else {
            continue;
        };
        vol_t[sv] = src_op.completed;
        let rewrite = cluster
            .member_mut(v)
            .mrs_mut()
            .msm_mut()
            .rewrite_block(strand, block, vol_t[v], &payload);
        // A stamp mismatch here means the copies diverged — try the
        // next source, or fall through to wholesale rebuild.
        if let Ok(op) = rewrite {
            vol_t[v] = op.completed;
            return Ok(ScrubRepair::Repaired);
        }
    }
    // Every source is unreadable or diverged: rebuild the replica
    // wholesale through the restore path.
    let mut switched = 0;
    for s in streams.iter_mut() {
        if s.title != title || s.replica != rep || s.finished() {
            continue;
        }
        if let Some(r) = find_replica(cluster, quarantined, title, Some(rep))
            .or_else(|| find_replica_any(cluster, title, Some(rep)))
        {
            switch_schedule(cluster, s, r)?;
            s.failovers += 1;
            switched += 1;
        }
    }
    cluster.invalidate_replica(title, rep)?;
    Ok(ScrubRepair::Invalidated { switched })
}

/// A viewer read hit a corrupt payload: serve that one block from
/// another live replica and rewrite the corrupt extent in place
/// (read-around repair). The stream keeps its pin — one corrupt block
/// costs one remote read instead of a permanent switch onto whatever
/// replica remains, which may sit on a quarantined fail-slow member.
/// Returns the serving volume and completion time, or `None` when no
/// other replica holds a verifiable copy of the block.
fn read_around_repair(
    cluster: &mut Cluster,
    quarantined: &[bool],
    title: TitleId,
    rep: usize,
    j: usize,
    not_before: Instant,
    vol_t: &mut [Instant],
) -> Result<Option<(usize, Instant)>, FsError> {
    let t = cluster.catalog().title(title);
    let (dst_vol, dst_item) = (t.replicas[rep].volume, t.replicas[rep].schedule.items[j]);
    let mut sources: Vec<(usize, _)> = t
        .replicas
        .iter()
        .enumerate()
        .filter(|&(r, rp)| {
            r != rep && rp.state == crate::catalog::ReplicaState::Live && cluster.is_up(rp.volume)
        })
        .map(|(_, rp)| (rp.volume, rp.schedule.items[j]))
        .collect();
    sources.sort_by_key(|&(sv, _)| quarantined[sv]);
    for (sv, src_item) in sources {
        if src_item.silence {
            continue;
        }
        // Same rule as the scrubber: never serve or launder a copy that
        // cannot pass verification itself.
        let src = cluster.members()[sv].mrs().msm();
        if !matches!(
            src.check_block_sum(src_item.strand, src_item.block),
            Ok(Some(true))
        ) {
            continue;
        }
        // The remote read cannot be issued before the corrupt local
        // read failed — `not_before` keeps completions monotonic.
        let issue = vol_t[sv].max(not_before);
        let fetched = cluster.member_mut(sv).mrs_mut().msm_mut().read_block(
            src_item.strand,
            src_item.block,
            issue,
        );
        let Ok((Some(payload), Some(op))) = fetched else {
            continue;
        };
        vol_t[sv] = op.completed;
        // Best effort: a failed rewrite (diverged stamp) still served a
        // verified payload; the scrubber deals with the bad copy later.
        if let Ok(wop) = cluster
            .member_mut(dst_vol)
            .mrs_mut()
            .msm_mut()
            .rewrite_block(dst_item.strand, dst_item.block, vol_t[dst_vol], &payload)
        {
            vol_t[dst_vol] = wop.completed;
        }
        return Ok(Some((sv, op.completed)));
    }
    Ok(None)
}

/// Totals the scrubber accumulates across rounds.
#[derive(Default)]
struct ScrubCounters {
    scrubbed: u64,
    corrupt: u64,
    repaired: u64,
    invalidated: u64,
}

/// One budgeted scrub pass over every up volume, charged strictly
/// against the slack between each volume's clock and `t_next` — the
/// round end playback already decided — so scrub can never extend a
/// round or perturb a deadline. Returns the stream re-pins repairs
/// forced.
#[allow(clippy::too_many_arguments)]
fn scrub_pass(
    cluster: &mut Cluster,
    cfg: &ClusterPlayback,
    obs: &ObsSink,
    quarantined: &[bool],
    streams: &mut [CStream],
    vol_t: &mut [Instant],
    t_next: Instant,
    scrub_cost: &[Nanos],
    scrub_cursor: &mut [(u64, u64)],
    scrub_passes: &mut [u64],
    stats: &mut [VolumeStats],
    counters: &mut ScrubCounters,
) -> Result<u64, FsError> {
    let mut switched_total = 0u64;
    for v in 0..vol_t.len() {
        if !cluster.is_up(v) {
            continue;
        }
        let mut budget = cfg.scrub_blocks_per_round;
        while budget > 0 && vol_t[v] + scrub_cost[v] <= t_next {
            match scrub_step(cluster, v, &mut scrub_cursor[v]) {
                None => {
                    scrub_passes[v] += 1;
                    break;
                }
                Some((strand, block, ok)) => {
                    budget -= 1;
                    vol_t[v] += scrub_cost[v];
                    counters.scrubbed += 1;
                    stats[v].scrubbed += 1;
                    let (at, sid) = (vol_t[v], strand.raw());
                    obs.emit(|| Event::Scrub {
                        volume: v,
                        strand: sid,
                        block,
                        ok,
                        at,
                    });
                    if !ok {
                        counters.corrupt += 1;
                        match repair_corrupt_block(
                            cluster,
                            quarantined,
                            streams,
                            vol_t,
                            v,
                            strand,
                            block,
                        )? {
                            ScrubRepair::Repaired => counters.repaired += 1,
                            ScrubRepair::Invalidated { switched } => {
                                counters.invalidated += 1;
                                switched_total += switched;
                                // The replica's strands just vanished
                                // from under the cursor; resume next
                                // round.
                                break;
                            }
                            ScrubRepair::Skipped => {}
                        }
                    }
                }
            }
        }
    }
    Ok(switched_total)
}

/// Probe quarantined members on their own clocks and re-admit after
/// enough consecutive on-time probes. A probe that surfaces a media
/// error converts the quarantine into a detected failure (`Down`).
fn probe_quarantined(
    cluster: &mut Cluster,
    cfg: &ClusterPlayback,
    obs: &ObsSink,
    quarantined: &mut [bool],
    clean_probes: &mut [u64],
    readmits: &mut u64,
    now: Instant,
) -> Result<(), FsError> {
    for v in 0..quarantined.len() {
        if !quarantined[v] {
            continue;
        }
        if !cluster.is_up(v) {
            // Down supersedes quarantine; rejoin handles the return.
            quarantined[v] = false;
            continue;
        }
        // Probe target: the first stored block of a live replica.
        let target = cluster.catalog().titles().iter().find_map(|t| {
            t.replicas
                .iter()
                .find(|r| r.volume == v && r.state == crate::catalog::ReplicaState::Live)
                .and_then(|r| r.schedule.items.iter().find(|i| !i.silence).copied())
        });
        if let Some(item) = target {
            match cluster
                .member_mut(v)
                .mrs_mut()
                .msm_mut()
                .read_block(item.strand, item.block, now)
            {
                Ok((_, Some(op))) => {
                    if op.completed - now <= item.duration {
                        clean_probes[v] += 1;
                    } else {
                        clean_probes[v] = 0;
                    }
                }
                Ok(_) => clean_probes[v] += 1,
                Err(FsError::ChecksumMismatch { .. }) => clean_probes[v] = 0,
                Err(_) => {
                    cluster.mark_down(v);
                    quarantined[v] = false;
                    continue;
                }
            }
        } else {
            // Nothing servable to probe; an empty member is harmless.
            clean_probes[v] += 1;
        }
        if clean_probes[v] >= cfg.readmit_probe_rounds.max(1) {
            quarantined[v] = false;
            *readmits += 1;
            let rounds = clean_probes[v];
            obs.emit(|| Event::Quarantine {
                volume: v,
                entered: false,
                rounds,
                at: now,
            });
        }
    }
    Ok(())
}

/// Re-pin a stream to replica `r`: swap in the replica's schedule in
/// place, keeping every completion, epoch and item offset.
fn switch_schedule(cluster: &Cluster, s: &mut CStream, r: usize) -> Result<(), FsError> {
    let rep = &cluster.catalog().title(s.title).replicas[r];
    if rep.schedule.items.len() != s.schedule.items.len() {
        return Err(FsError::InvalidScenario {
            reason: "replica schedules are not structurally identical",
        });
    }
    s.schedule = rep.schedule.clone();
    s.replica = r;
    Ok(())
}

/// Simulate cluster playback: one viewer stream per entry of
/// `viewers` (each a catalog title), with `script` driving member
/// kills and rejoins at round boundaries.
///
/// Viewers of a multi-replica title are spread across its replicas
/// round-robin. Install a shared sink via [`Cluster::set_obs`] before
/// calling to observe the whole cluster in one monitor.
pub fn simulate_cluster(
    cluster: &mut Cluster,
    viewers: &[TitleId],
    script: &[ScriptedAction],
    cfg: &ClusterPlayback,
) -> Result<ClusterReport, FsError> {
    let obs = cluster.obs();
    let volumes = cluster.members().len();
    let replicated: Vec<bool> = viewers
        .iter()
        .map(|&t| cluster.catalog().title(t).replicas.len() >= 2)
        .collect();
    let mut streams: Vec<CStream> = Vec::with_capacity(viewers.len());
    for (i, &title) in viewers.iter().enumerate() {
        let nrep = cluster.catalog().title(title).replicas.len();
        let start = i % nrep.max(1);
        let replica = (0..nrep)
            .map(|d| (start + d) % nrep)
            .find(|&r| {
                let rep = &cluster.catalog().title(title).replicas[r];
                rep.state == crate::catalog::ReplicaState::Live && cluster.is_up(rep.volume)
            })
            .ok_or(FsError::InvalidScenario {
                reason: "viewer title has no live replica on an up member",
            })?;
        let schedule = cluster.catalog().title(title).replicas[replica]
            .schedule
            .clone();
        streams.push(CStream::new(
            title,
            replica,
            schedule,
            cfg.read_ahead.max(1),
        ));
    }

    let mut vol_t: Vec<Instant> = vec![Instant::EPOCH; volumes];
    let mut busy_mark: Vec<Nanos> = (0..volumes)
        .map(|v| cluster.members()[v].mrs().msm().disk().stats().busy_time())
        .collect();
    let mut disk_busy = Nanos::ZERO;
    let mut stats = vec![VolumeStats::default(); volumes];
    let mut rejoins = Vec::new();
    let mut applied = vec![false; script.len()];
    let mut failovers = 0u64;
    let mut restored_blocks = 0u64;
    let mut restored_replicas = 0u64;
    let mut t = Instant::EPOCH;
    let mut round = 0u64;
    let mut clean_streak = 0u64;
    let k = cfg.k.max(1);

    // Integrity and fail-slow defense state.
    let mut quarantined = vec![false; volumes];
    let mut clean_probes = vec![0u64; volumes];
    let mut hedged_rounds = vec![0u64; volumes];
    let mut round_hedges = vec![0u64; volumes];
    let mut scrub_cursor = vec![(0u64, 0u64); volumes];
    let mut scrub_passes = vec![0u64; volumes];
    // The conservative slack charge for one scrub probe: worst-case
    // positioning plus one revolution. Scrub only runs while the
    // volume's clock plus this charge stays inside the already-decided
    // round end, so it can never extend a round.
    let scrub_cost: Vec<Nanos> = (0..volumes)
        .map(|v| {
            let d = cluster.members()[v].mrs().msm().disk();
            (d.max_positioning_time() + d.geometry().rotation_time()).to_nanos()
        })
        .collect();
    let mut scrub = ScrubCounters::default();
    let mut corrupt_served = 0u64;
    let mut read_repairs = 0u64;
    let mut hedges = 0u64;
    let mut hedge_wins = 0u64;
    let mut quarantines = 0u64;
    let mut quarantine_readmits = 0u64;

    loop {
        // Scripted membership changes due at this round boundary.
        for (si, a) in script.iter().enumerate() {
            if applied[si] || a.at_round > round {
                continue;
            }
            applied[si] = true;
            match a.action {
                ClusterAction::Kill(v) => {
                    cluster.kill(v);
                }
                ClusterAction::Rejoin(v) => {
                    rejoins.push(cluster.rejoin(v, t)?);
                    // Recovery I/O is mount work, not playback service.
                    busy_mark[v] = cluster.members()[v].mrs().msm().disk().stats().busy_time();
                }
                ClusterAction::RejoinWiped(v) => {
                    rejoins.push(cluster.rejoin_wiped(v));
                    busy_mark[v] = cluster.members()[v].mrs().msm().disk().stats().busy_time();
                }
            }
        }
        // Ladder re-admission: the fault window stayed clear long
        // enough AND the stream has somewhere live to play from.
        if clean_streak >= cfg.readmit_clean_rounds {
            for (idx, s) in streams.iter_mut().enumerate() {
                if s.revoked_at.is_none() || s.finished() {
                    continue;
                }
                let Some(r) = find_replica(cluster, &quarantined, s.title, None)
                    .or_else(|| find_replica_any(cluster, s.title, None))
                else {
                    continue;
                };
                if r != s.replica {
                    switch_schedule(cluster, s, r)?;
                }
                let since = s.revoked_at.take().expect("checked above");
                s.recovery_time += t - since;
                s.drops_since_admit = 0;
                s.epochs.push(Epoch {
                    first_item: s.next,
                    display_start: None,
                    resumed_at: Some(t),
                });
                let item = s.next as u64;
                obs.emit(|| Event::Degrade {
                    stream: idx,
                    round,
                    item,
                    action: DegradeAction::Readmit,
                    at: t,
                });
            }
        }
        let active: Vec<usize> = streams
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.finished() && s.revoked_at.is_none())
            .map(|(i, _)| i)
            .collect();
        let script_pending = applied.iter().any(|done| !done);
        let restore_pending = cfg.restore_blocks_per_round > 0 && cluster.restorable_lost();
        let scrub_pending = cfg.scrub_blocks_per_round > 0
            && (0..volumes).any(|v| cluster.is_up(v) && scrub_passes[v] == 0);
        if active.is_empty() {
            let revoked: Vec<&CStream> = streams
                .iter()
                .filter(|s| !s.finished() && s.revoked_at.is_some())
                .collect();
            let can_return = revoked
                .iter()
                .any(|s| find_replica_any(cluster, s.title, None).is_some());
            if !script_pending
                && !restore_pending
                && !scrub_pending
                && (revoked.is_empty() || !can_return)
            {
                break;
            }
            // Idle round: no I/O, but revoked viewers' displays sit
            // frozen while it passes — advance the clock so recovery
            // accounting sees the outage.
            let min_dur = revoked
                .iter()
                .map(|s| s.schedule.items[s.next].duration)
                .min()
                .unwrap_or(Nanos::from_millis(100));
            let advanced = Nanos::from_nanos(k.saturating_mul(min_dur.as_nanos()));
            obs.emit(|| Event::RoundIdle {
                round,
                at: t,
                advanced,
            });
            // Idle rounds belong to the scrubber and the quarantine
            // probes: the whole advanced window is spare slack.
            if cfg.scrub_blocks_per_round > 0 {
                for clock in vol_t.iter_mut() {
                    *clock = t;
                }
                failovers += scrub_pass(
                    cluster,
                    cfg,
                    &obs,
                    &quarantined,
                    &mut streams,
                    &mut vol_t,
                    t + advanced,
                    &scrub_cost,
                    &mut scrub_cursor,
                    &mut scrub_passes,
                    &mut stats,
                    &mut scrub,
                )?;
            }
            probe_quarantined(
                cluster,
                cfg,
                &obs,
                &mut quarantined,
                &mut clean_probes,
                &mut quarantine_readmits,
                t,
            )?;
            t += advanced;
            if cfg.restore_blocks_per_round > 0 {
                let p = cluster.re_replicate(t, cfg.restore_blocks_per_round)?;
                restored_blocks += p.copied_blocks;
                restored_replicas += p.completed_replicas;
                t = t.max(p.finished_at);
            }
            clean_streak += 1;
            round += 1;
            if round >= cfg.max_rounds {
                break;
            }
            continue;
        }
        obs.emit(|| Event::RoundStart {
            round,
            active: active.len(),
            k,
            at: t,
        });
        for item in vol_t.iter_mut() {
            *item = t;
        }
        for h in round_hedges.iter_mut() {
            *h = 0;
        }
        let mut round_faults = false;
        for &idx in &active {
            let s = &mut streams[idx];
            if s.service_start.is_none() {
                s.service_start = Some(t);
            }
            let mut vol = cluster.catalog().title(s.title).replicas[s.replica].volume;
            let turn_begin = vol_t[vol];
            let mut turn_blocks = 0u64;
            let mut revoked_now = false;
            for _ in 0..k {
                if s.finished() || revoked_now {
                    break;
                }
                let j = s.next;
                if s.schedule.items[j].silence {
                    let done = vol_t[vol].max(s.serve_floor);
                    s.serve_floor = done;
                    s.completions.push(done);
                    s.dropped.push(false);
                } else {
                    // Fetch, failing over across replicas on a media
                    // error — the glitch stays bounded by read-ahead
                    // because the re-fetch happens in the same round.
                    let mut fetched = false;
                    let mut fail_at = vol_t[vol].max(s.serve_floor);
                    for _attempt in 0..=volumes {
                        if cluster.is_up(vol) {
                            let item = s.schedule.items[j];
                            let issue = vol_t[vol].max(fail_at);
                            let deadline = s.deadline_of(j);
                            match cluster
                                .member_mut(vol)
                                .mrs_mut()
                                .msm_mut()
                                .read_block_resilient_timed(
                                    item.strand,
                                    item.block,
                                    issue,
                                    item.duration,
                                    deadline,
                                )? {
                                BlockFetch::Silence => {
                                    return Err(FsError::InvalidScenario {
                                        reason:
                                            "non-silence schedule item resolves to a silence hole",
                                    })
                                }
                                BlockFetch::Data { op, retries, .. } => {
                                    vol_t[vol] = op.completed;
                                    if retries > 0 {
                                        round_faults = true;
                                        s.retries += retries as u64;
                                    }
                                    stats[vol].fetched += 1;
                                    let mut done = op.completed;
                                    let mut served = (vol, item);
                                    let lat = op.completed - issue;
                                    // Fail-slow defense: a fetch slower
                                    // than its block's play duration
                                    // cannot sustain continuity — race a
                                    // replica from the moment the
                                    // threshold passed, earliest
                                    // completion wins.
                                    if cfg.hedge && lat > item.duration {
                                        round_hedges[vol] += 1;
                                        stats[vol].hedged += 1;
                                        if let Some(r) = find_replica(
                                            cluster,
                                            &quarantined,
                                            s.title,
                                            Some(s.replica),
                                        ) {
                                            let (hv, h_item) = {
                                                let rep =
                                                    &cluster.catalog().title(s.title).replicas[r];
                                                (rep.volume, rep.schedule.items[j])
                                            };
                                            let h_issue = vol_t[hv].max(issue + item.duration);
                                            let h = cluster
                                                .member_mut(hv)
                                                .mrs_mut()
                                                .msm_mut()
                                                .read_block_resilient_timed(
                                                    h_item.strand,
                                                    h_item.block,
                                                    h_issue,
                                                    item.duration,
                                                    deadline,
                                                )?;
                                            hedges += 1;
                                            let mut won = false;
                                            if let BlockFetch::Data { op: h_op, .. } = h {
                                                vol_t[hv] = h_op.completed;
                                                if h_op.completed < done {
                                                    won = true;
                                                    done = h_op.completed;
                                                    served = (hv, h_item);
                                                    stats[hv].fetched += 1;
                                                    hedge_wins += 1;
                                                }
                                            }
                                            let at = done;
                                            obs.emit(|| Event::Hedge {
                                                stream: idx,
                                                volume: vol,
                                                hedge_volume: hv,
                                                primary: lat,
                                                won,
                                                at,
                                            });
                                            if won {
                                                // Stay on the faster copy
                                                // for the rest of the run.
                                                switch_schedule(cluster, s, r)?;
                                                s.failovers += 1;
                                                failovers += 1;
                                                vol = hv;
                                            }
                                        }
                                    }
                                    if cfg.audit_integrity
                                        && matches!(
                                            cluster.members()[served.0]
                                                .mrs()
                                                .msm()
                                                .check_block_sum(served.1.strand, served.1.block),
                                            Ok(Some(false))
                                        )
                                    {
                                        corrupt_served += 1;
                                    }
                                    s.serve_floor = done;
                                    s.completions.push(done);
                                    s.dropped.push(false);
                                    fetched = true;
                                    break;
                                }
                                BlockFetch::Failed {
                                    reason,
                                    at,
                                    retries,
                                } => {
                                    round_faults = true;
                                    s.retries += retries as u64;
                                    fail_at = fail_at.max(at);
                                    vol_t[vol] = vol_t[vol].max(at);
                                    match reason {
                                        FetchFailure::Media => {
                                            // Volume-failure detection:
                                            // the read path, not an
                                            // oracle.
                                            cluster.mark_down(vol);
                                        }
                                        // The deadline is gone on every
                                        // volume — drop, don't failover.
                                        FetchFailure::Abandoned => break,
                                        FetchFailure::RetriesExhausted => {}
                                        // A corrupt payload is a replica
                                        // problem, not a member problem:
                                        // serve this one block from a
                                        // clean copy and rewrite the bad
                                        // extent in place, keeping the
                                        // stream's pin. Only when no
                                        // verifiable copy exists does the
                                        // stream switch replicas below.
                                        FetchFailure::Corrupt => {
                                            if let Some((sv, done)) = read_around_repair(
                                                cluster,
                                                &quarantined,
                                                s.title,
                                                s.replica,
                                                j,
                                                fail_at,
                                                &mut vol_t,
                                            )? {
                                                stats[sv].fetched += 1;
                                                read_repairs += 1;
                                                // The stream's next fetch
                                                // is issued after this
                                                // serve (serve_floor) —
                                                // the volume's own clock
                                                // is not charged for the
                                                // remote read.
                                                s.serve_floor = done;
                                                s.completions.push(done);
                                                s.dropped.push(false);
                                                fetched = true;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        if fetched {
                            break;
                        }
                        match find_replica(cluster, &quarantined, s.title, Some(s.replica))
                            .or_else(|| find_replica_any(cluster, s.title, Some(s.replica)))
                        {
                            Some(r) => {
                                switch_schedule(cluster, s, r)?;
                                vol = cluster.catalog().title(s.title).replicas[r].volume;
                                s.failovers += 1;
                                failovers += 1;
                            }
                            None => break,
                        }
                    }
                    if !fetched {
                        let drop_at = vol_t[vol].max(fail_at).max(s.serve_floor);
                        s.serve_floor = drop_at;
                        s.completions.push(drop_at);
                        s.dropped.push(true);
                        s.drops_since_admit += 1;
                        round_faults = true;
                        obs.emit(|| Event::Degrade {
                            stream: idx,
                            round,
                            item: j as u64,
                            action: DegradeAction::DropBlock,
                            at: drop_at,
                        });
                        if s.drops_since_admit >= cfg.revoke_after_drops.max(1) {
                            s.revoked_at = Some(drop_at);
                            s.revokes += 1;
                            revoked_now = true;
                            obs.emit(|| Event::Degrade {
                                stream: idx,
                                round,
                                item: j as u64,
                                action: DegradeAction::Revoke,
                                at: drop_at,
                            });
                        }
                    }
                }
                s.fetch_rounds.push(round);
                s.next += 1;
                turn_blocks += 1;
                let finished = s.finished();
                let read_ahead = s.read_ahead;
                let now = vol_t[vol];
                let ep = s.epochs.last_mut().expect("epochs never empty");
                if ep.display_start.is_none()
                    && ((s.next - ep.first_item) as u64 >= read_ahead || finished)
                {
                    ep.display_start = Some(now);
                    let anchor = ep.resumed_at.or(s.service_start).unwrap_or(now);
                    obs.emit(|| Event::DisplayStart {
                        stream: idx,
                        at: now,
                        latency: now - anchor,
                    });
                }
            }
            s.emit_due_deadlines(idx, &obs);
            let end = vol_t[vol];
            obs.emit(|| Event::StreamService {
                stream: idx,
                round,
                begin: turn_begin,
                end,
                blocks: turn_blocks,
            });
        }
        // The cluster round ends when the slowest volume — and the
        // round's background restore budget — is done.
        let mut t_next = vol_t.iter().copied().max().unwrap_or(t);
        if cfg.restore_blocks_per_round > 0 {
            let p = cluster.re_replicate(t_next, cfg.restore_blocks_per_round)?;
            restored_blocks += p.copied_blocks;
            restored_replicas += p.completed_replicas;
            t_next = t_next.max(p.finished_at);
        }
        // The round end is decided; whatever slack remains on each
        // volume's clock belongs to the scrubber.
        if cfg.scrub_blocks_per_round > 0 {
            failovers += scrub_pass(
                cluster,
                cfg,
                &obs,
                &quarantined,
                &mut streams,
                &mut vol_t,
                t_next,
                &scrub_cost,
                &mut scrub_cursor,
                &mut scrub_passes,
                &mut stats,
                &mut scrub,
            )?;
        }
        obs.emit(|| Event::RoundEnd { round, at: t_next });
        t = t_next;
        // Fail-slow quarantine: a member that kept firing hedges sits
        // out — no placement, no serving where an alternative exists —
        // until probes come back on time.
        if cfg.quarantine_after_rounds > 0 {
            for v in 0..volumes {
                if quarantined[v] {
                    continue;
                }
                if round_hedges[v] > 0 {
                    hedged_rounds[v] += 1;
                } else {
                    hedged_rounds[v] = 0;
                }
                if hedged_rounds[v] >= cfg.quarantine_after_rounds && cluster.is_up(v) {
                    quarantined[v] = true;
                    quarantines += 1;
                    clean_probes[v] = 0;
                    let rounds = hedged_rounds[v];
                    obs.emit(|| Event::Quarantine {
                        volume: v,
                        entered: true,
                        rounds,
                        at: t,
                    });
                    hedged_rounds[v] = 0;
                    // Walk every pinned stream off the slow member;
                    // sole-copy streams stay as a fallback.
                    for s2 in streams.iter_mut() {
                        if s2.finished() {
                            continue;
                        }
                        if cluster.catalog().title(s2.title).replicas[s2.replica].volume != v {
                            continue;
                        }
                        if let Some(r) =
                            find_replica(cluster, &quarantined, s2.title, Some(s2.replica))
                        {
                            switch_schedule(cluster, s2, r)?;
                            s2.failovers += 1;
                            failovers += 1;
                        }
                    }
                }
            }
            probe_quarantined(
                cluster,
                cfg,
                &obs,
                &mut quarantined,
                &mut clean_probes,
                &mut quarantine_readmits,
                t,
            )?;
        }
        for v in 0..volumes {
            let busy = cluster.members()[v].mrs().msm().disk().stats().busy_time();
            disk_busy += busy - busy_mark[v];
            busy_mark[v] = busy;
            if !cluster.is_up(v) {
                stats[v].rounds_down += 1;
            }
        }
        if round_faults {
            clean_streak = 0;
        } else {
            clean_streak += 1;
        }
        round += 1;
        if round >= cfg.max_rounds {
            break;
        }
    }

    Ok(ClusterReport {
        sim: SimReport {
            streams: streams
                .iter()
                .enumerate()
                .map(|(i, s)| s.outcome(i, &obs))
                .collect(),
            disk_busy,
            rounds: round,
        },
        replicated,
        miss_bursts: streams.iter().map(|s| s.miss_burst()).collect(),
        failovers: streams
            .iter()
            .map(|s| s.failovers)
            .sum::<u64>()
            .max(failovers),
        rejoins,
        restored_blocks,
        restored_replicas,
        scrubbed_blocks: scrub.scrubbed,
        scrub_corrupt: scrub.corrupt,
        scrub_repaired: scrub.repaired,
        read_repairs,
        scrub_invalidated: scrub.invalidated,
        corrupt_served,
        hedges,
        hedge_wins,
        quarantines,
        quarantine_readmits,
        volumes: stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::ReplicaState;
    use crate::cluster::{ClusterConfig, MemberState};
    use crate::placement::Placement;
    use strandfs_disk::FaultPlan;
    use strandfs_sim::scenario::ClipSpec;

    fn cluster(volumes: usize, base_replicas: usize) -> Cluster {
        Cluster::new(ClusterConfig {
            volumes,
            placement: Placement::RoundRobin,
            base_replicas,
            seed: 42,
        })
        .expect("cluster")
    }

    #[test]
    fn clean_cluster_plays_every_stream_continuously() {
        let mut c = cluster(2, 1);
        let a = c
            .ingest("a", &ClipSpec::video_seconds(1.0).with_seed(1), 0.0)
            .unwrap();
        let b = c
            .ingest("b", &ClipSpec::video_seconds(1.0).with_seed(2), 0.0)
            .unwrap();
        let report =
            simulate_cluster(&mut c, &[a, b], &[], &ClusterPlayback::with_k(3)).expect("sim");
        assert!(report.sim.all_continuous());
        assert_eq!(report.sim.total_dropped(), 0);
        assert_eq!(report.failovers, 0);
        // Each title landed on its own volume; both volumes served.
        assert!(report.volumes.iter().all(|v| v.fetched > 0));
    }

    #[test]
    fn replicated_stream_survives_a_volume_kill_without_losing_blocks() {
        let mut c = cluster(2, 2);
        let id = c
            .ingest("hot", &ClipSpec::video_seconds(2.0).with_seed(5), 1.0)
            .unwrap();
        let script = [ScriptedAction {
            at_round: 2,
            action: ClusterAction::Kill(0),
        }];
        let report =
            simulate_cluster(&mut c, &[id, id], &script, &ClusterPlayback::with_k(3)).expect("sim");
        assert_eq!(
            report.replicated_dropped(),
            0,
            "failover must lose 0 blocks"
        );
        assert!(report.failovers >= 1, "the kill must force a failover");
        // The glitch is bounded by the read-ahead.
        assert!(
            report.replicated_miss_burst() <= 3,
            "miss burst {} exceeds read-ahead",
            report.replicated_miss_burst()
        );
        // Detection happened through the read path.
        assert_eq!(c.members()[0].state(), MemberState::Down);
        assert!(report.volumes[0].rounds_down > 0);
    }

    #[test]
    fn unreplicated_stream_rides_the_ladder_and_returns_after_rejoin() {
        let mut c = cluster(2, 1);
        let a = c
            .ingest("solo", &ClipSpec::video_seconds(2.0).with_seed(3), 0.0)
            .unwrap();
        // Volume 0 holds "solo"; kill it early, rejoin later.
        let script = [
            ScriptedAction {
                at_round: 1,
                action: ClusterAction::Kill(0),
            },
            ScriptedAction {
                at_round: 6,
                action: ClusterAction::Rejoin(0),
            },
        ];
        let mut cfg = ClusterPlayback::with_k(3);
        cfg.revoke_after_drops = 2;
        cfg.readmit_clean_rounds = 1;
        let report = simulate_cluster(&mut c, &[a], &script, &cfg).expect("sim");
        let s = &report.sim.streams[0];
        assert!(s.dropped_blocks > 0, "the unreplicated stream must drop");
        assert!(s.revokes >= 1, "the ladder must revoke it");
        assert!(
            s.recovery_time > Nanos::ZERO,
            "revocation must cost recovery time"
        );
        // After the rejoin it finished its schedule.
        assert_eq!(s.blocks, s.dropped_blocks + report.sim.streams[0].fetched);
        assert_eq!(report.rejoins.len(), 1);
        assert_eq!(report.rejoins[0].fsck_findings, 0);
        assert_eq!(report.rejoins[0].reconcile.lost, 0);
    }

    /// Flip one bit in each of the first `blocks` stored blocks of the
    /// title's replica on volume 0, invisibly to the device.
    fn corrupt_first_blocks(c: &mut Cluster, id: crate::catalog::TitleId, blocks: u64) {
        let loc = {
            let rep = &c.catalog().title(id).replicas[0];
            assert_eq!(rep.volume, 0);
            rep.strands[0]
        };
        let mut plan = FaultPlan::clean();
        for n in 0..blocks.min(loc.blocks) {
            let e = c.members()[0]
                .mrs()
                .msm()
                .strand(loc.strand)
                .expect("strand")
                .block(n)
                .expect("block")
                .expect("stored block");
            plan = plan.with_silent_corruption(e);
        }
        assert!(c.arm_member_faults(0, plan));
    }

    #[test]
    fn scrub_detects_repairs_and_keeps_viewers_clean() {
        let mut c = cluster(2, 2);
        let id = c
            .ingest("hot", &ClipSpec::video_seconds(2.0).with_seed(21), 1.0)
            .unwrap();
        c.set_verify_reads(true);
        corrupt_first_blocks(&mut c, id, 3);
        let cfg = ClusterPlayback::with_k(3).scrub(4).restore(2).audited();
        let report = simulate_cluster(&mut c, &[id], &[], &cfg).expect("sim");
        assert!(report.scrubbed_blocks > 0);
        // The viewer reaches the bad run before the scrub cursor does:
        // each verified read detects the flip, serves the clean copy and
        // rewrites the extent in place — scrub then finds nothing left.
        assert_eq!(report.read_repairs, 3, "read-around must repair each flip");
        assert_eq!(report.scrub_corrupt, 0, "nothing left for the scrubber");
        assert_eq!(report.scrub_invalidated, 0, "no wholesale rebuild needed");
        assert_eq!(
            report.corrupt_served, 0,
            "verified reads must keep corrupt payloads off the wire"
        );
        assert_eq!(report.replicated_dropped(), 0);
        assert!(c.is_up(0), "silent corruption must not down the member");
        // The corrupt copy was rebuilt from the live replica and the
        // member converged to fsck-clean.
        assert!(c
            .catalog()
            .title(id)
            .replicas
            .iter()
            .all(|r| r.state == ReplicaState::Live));
        assert!(c.fsck_member(0, Instant::from_nanos(u64::MAX / 4)).clean());
    }

    #[test]
    fn scrubber_repairs_in_place_without_viewer_traffic() {
        // No viewers: only the slack-budgeted scrubber walks the
        // extents, so the detection and in-place repair are entirely
        // its own.
        let mut c = cluster(2, 2);
        let id = c
            .ingest("hot", &ClipSpec::video_seconds(2.0).with_seed(21), 1.0)
            .unwrap();
        c.set_verify_reads(true);
        corrupt_first_blocks(&mut c, id, 3);
        let cfg = ClusterPlayback::with_k(3).scrub(4).restore(2).audited();
        let report = simulate_cluster(&mut c, &[], &[], &cfg).expect("sim");
        assert!(report.scrubbed_blocks > 0);
        assert_eq!(report.scrub_corrupt, 3, "scrub must detect every bit flip");
        assert_eq!(report.scrub_repaired, 3, "each block is rewritten in place");
        assert_eq!(report.scrub_invalidated, 0, "no wholesale rebuild needed");
        assert_eq!(report.read_repairs, 0, "no viewer reads, no read-around");
        assert!(c
            .catalog()
            .title(id)
            .replicas
            .iter()
            .all(|r| r.state == ReplicaState::Live));
        assert!(c.fsck_member(0, Instant::from_nanos(u64::MAX / 4)).clean());
    }

    #[test]
    fn without_scrub_or_verification_corruption_reaches_viewers() {
        let mut c = cluster(2, 2);
        let id = c
            .ingest("hot", &ClipSpec::video_seconds(2.0).with_seed(21), 1.0)
            .unwrap();
        corrupt_first_blocks(&mut c, id, 3);
        let cfg = ClusterPlayback::with_k(3).audited();
        let report = simulate_cluster(&mut c, &[id], &[], &cfg).expect("sim");
        assert!(
            report.corrupt_served > 0,
            "with defenses off the audience gets the bit flips"
        );
        assert_eq!(report.scrubbed_blocks, 0);
        assert_eq!(report.replicated_dropped(), 0, "nothing even notices");
    }

    #[test]
    fn hedged_reads_ride_out_a_fail_slow_member() {
        let fail_slow = FaultPlan::clean().with_fail_slow(10.0);
        let mut c = cluster(2, 2);
        let id = c
            .ingest("hot", &ClipSpec::video_seconds(2.0).with_seed(23), 1.0)
            .unwrap();
        assert!(c.arm_member_faults(0, fail_slow.clone()));
        let mut cfg = ClusterPlayback::with_k(3).hedged();
        cfg.quarantine_after_rounds = 1;
        let hedged = simulate_cluster(&mut c, &[id, id], &[], &cfg).expect("sim");
        assert!(hedged.hedges > 0, "slow primaries must fire hedges");
        assert!(hedged.hedge_wins > 0, "the healthy replica must win");
        assert!(hedged.quarantines >= 1, "the slow member must sit out");
        assert_eq!(hedged.replicated_dropped(), 0);
        assert!(c.is_up(0), "fail-slow is gray: the member never errors");
        // The same scenario without hedging: the round barrier waits on
        // the 10x member every round and deadlines collapse.
        let mut c2 = cluster(2, 2);
        let id2 = c2
            .ingest("hot", &ClipSpec::video_seconds(2.0).with_seed(23), 1.0)
            .unwrap();
        assert!(c2.arm_member_faults(0, fail_slow));
        let bare =
            simulate_cluster(&mut c2, &[id2, id2], &[], &ClusterPlayback::with_k(3)).expect("sim");
        assert!(
            bare.sim.total_violations() > hedged.sim.total_violations(),
            "non-hedged must miss more deadlines ({} vs {})",
            bare.sim.total_violations(),
            hedged.sim.total_violations()
        );
    }

    #[test]
    fn scrub_off_vs_on_is_zero_perturbation_for_healthy_streams() {
        // Identical clusters, identical viewers; the only difference is
        // the scrub budget. Per-stream completion times must match
        // exactly: scrub runs strictly inside slack the round already
        // paid for.
        let run = |scrub: u64| {
            let mut c = cluster(2, 2);
            let id = c
                .ingest("hot", &ClipSpec::video_seconds(2.0).with_seed(29), 1.0)
                .unwrap();
            c.set_verify_reads(true);
            let cfg = if scrub > 0 {
                ClusterPlayback::with_k(3).scrub(scrub)
            } else {
                ClusterPlayback::with_k(3)
            };
            simulate_cluster(&mut c, &[id, id], &[], &cfg).expect("sim")
        };
        let off = run(0);
        let on = run(4);
        assert!(on.scrubbed_blocks > 0);
        assert_eq!(on.sim.total_violations(), off.sim.total_violations());
        assert_eq!(on.sim.total_dropped(), off.sim.total_dropped());
        for (a, b) in off.sim.streams.iter().zip(&on.sim.streams) {
            assert_eq!(a.violations, b.violations);
            assert_eq!(a.start_latency, b.start_latency);
            assert_eq!(a.max_lateness, b.max_lateness);
        }
    }

    #[test]
    fn wiped_member_is_rebuilt_in_the_background_during_service() {
        let mut c = cluster(2, 2);
        let id = c
            .ingest("hot", &ClipSpec::video_seconds(2.0).with_seed(9), 1.0)
            .unwrap();
        let script = [
            ScriptedAction {
                at_round: 1,
                action: ClusterAction::Kill(0),
            },
            ScriptedAction {
                at_round: 3,
                action: ClusterAction::RejoinWiped(0),
            },
        ];
        // Restore budget small enough for the round slack to absorb —
        // restore I/O extends rounds, and a saturating budget would
        // push playback past its deadlines.
        let cfg = ClusterPlayback::with_k(3).restore(2);
        let report = simulate_cluster(&mut c, &[id], &script, &cfg).expect("sim");
        assert_eq!(report.replicated_dropped(), 0);
        assert!(report.restored_blocks > 0, "restore must copy blocks");
        assert_eq!(report.restored_replicas, 1);
        // The rebuilt replica is live and fsck finds the member clean.
        assert!(!c.restorable_lost());
        assert!(c
            .catalog()
            .title(id)
            .replicas
            .iter()
            .all(|r| r.state == crate::catalog::ReplicaState::Live));
        assert!(c.fsck_member(0, Instant::from_nanos(u64::MAX / 4)).clean());
    }
}
