//! The cluster itself: N member volumes, ingest with replica
//! placement, volume kill/rejoin, and background re-replication.

use crate::catalog::{Catalog, ReconcileReport, Replica, ReplicaState, StrandLoc, TitleId};
use crate::placement::{hypothetical_slack, standard_spec, Placement, VolumeLoad};
use strandfs_core::fsck;
use strandfs_core::journal::JournalConfig;
use strandfs_core::mrs::{compile_schedule, Mrs, PlaySchedule};
use strandfs_core::msm::{Msm, MsmConfig, RecoveryReport};
use strandfs_core::rope::edit::{Interval, MediaSel};
use strandfs_core::{FsError, StrandId};
use strandfs_disk::{
    DiskGeometry, Extent, FaultInjector, FaultPlan, GapBounds, SeekModel, SimDisk,
};
use strandfs_obs::ObsSink;
use strandfs_sim::scenario::{record_clip, ClipSpec};
use strandfs_units::prng::mix_seed;
use strandfs_units::Instant;

/// Whether a member is believed servable. `Down` is a *belief*, not a
/// command: [`Cluster::kill`] only arms the fault plan, and the member
/// stays `Up` until a read actually fails and the serving loop calls
/// [`Cluster::mark_down`] — failure is detected at the read path, as
/// on real hardware.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemberState {
    /// Serving.
    Up,
    /// A read surfaced a media error; no I/O is sent until rejoin.
    Down,
}

/// One member volume: a full rope server over its own fault-injecting
/// disk, with its own journal and admission controller.
pub struct Member {
    mrs: Mrs,
    state: MemberState,
}

impl Member {
    /// The member's rope server.
    pub fn mrs(&self) -> &Mrs {
        &self.mrs
    }

    /// Mutable access to the member's rope server.
    pub fn mrs_mut(&mut self) -> &mut Mrs {
        &mut self.mrs
    }

    /// The member's serving state.
    pub fn state(&self) -> MemberState {
        self.state
    }
}

/// Cluster construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Member volume count.
    pub volumes: usize,
    /// Replica placement policy.
    pub placement: Placement,
    /// Replicas per title before any popularity boost.
    pub base_replicas: usize,
    /// Seed for the members' fault-injector PRNGs.
    pub seed: u64,
}

impl ClusterConfig {
    /// `volumes` members, round-robin single-replica placement.
    pub fn round_robin(volumes: usize, seed: u64) -> ClusterConfig {
        ClusterConfig {
            volumes,
            placement: Placement::RoundRobin,
            base_replicas: 1,
            seed,
        }
    }
}

/// What a rejoin did: journal recovery, fsck, and catalog
/// reconciliation.
#[derive(Clone, Copy, Debug)]
pub struct RejoinReport {
    /// The member that rejoined.
    pub volume: usize,
    /// True for a wiped rejoin (fresh media, all replicas lost).
    pub wiped: bool,
    /// Journal recovery statistics (`None` for a wiped rejoin).
    pub recovery: Option<RecoveryReport>,
    /// Findings fsck's repair pass reported on the recovered image.
    pub fsck_findings: usize,
    /// What catalog reconciliation concluded.
    pub reconcile: ReconcileReport,
}

/// Progress of one background re-replication step.
#[derive(Clone, Copy, Debug, Default)]
pub struct RestoreProgress {
    /// Media blocks copied this step (silence holes included).
    pub copied_blocks: u64,
    /// Replicas brought back to `Live` this step.
    pub completed_replicas: u64,
    /// Virtual time the step's last disk operation completed (equals
    /// the step's start when nothing was copied).
    pub finished_at: Instant,
}

/// In-flight state of one replica restoration, kept across budgeted
/// steps so a long title copies a few blocks per service round.
struct RestoreJob {
    title: TitleId,
    /// Index of the lost replica being rebuilt.
    replica: usize,
    /// The live replica blocks are read from.
    src_replica: usize,
    /// Source strands already copied, as `(src, dst)` pairs.
    map: Vec<(StrandId, StrandId)>,
    /// Index into the source replica's strand list.
    cur: usize,
    /// Next block to copy within the current strand.
    block: u64,
    /// The destination strand currently recording.
    dst_open: Option<StrandId>,
}

/// A multi-volume cluster: members, master catalog, placement state
/// and the background restore queue.
pub struct Cluster {
    config: ClusterConfig,
    members: Vec<Member>,
    catalog: Catalog,
    /// Round-robin placement rotation.
    cursor: usize,
    /// Replicas placed per member (the load input to placement).
    placed: Vec<usize>,
    restore: Option<RestoreJob>,
    /// The shared sink, re-installed on members rebuilt by rejoin.
    obs: ObsSink,
    /// Whether member fetches verify payload checksums; re-applied to
    /// members rebuilt by rejoin.
    verify_reads: bool,
}

impl Cluster {
    /// The standard per-member MSM configuration: constrained
    /// allocation with generous scattering bounds, journal on (rejoin
    /// runs `Msm::recover`, which requires one). The checkpoint slots
    /// are sized for a few dozen strands per member — short clips, not
    /// hour-long features.
    fn member_config() -> MsmConfig {
        MsmConfig::constrained(
            GapBounds {
                min_sectors: 0,
                max_sectors: 40_000,
            },
            1,
        )
        .with_journal(JournalConfig {
            slots: 256,
            ckpt_sectors: 64,
        })
    }

    fn fresh_member(seed: u64) -> Member {
        let disk = SimDisk::new(DiskGeometry::vintage_1991(), SeekModel::vintage_1991());
        let injector = FaultInjector::new(disk, FaultPlan::clean(), seed);
        Member {
            mrs: Mrs::new(Msm::new(injector, Self::member_config())),
            state: MemberState::Up,
        }
    }

    /// Build a cluster of `config.volumes` fresh members.
    pub fn new(config: ClusterConfig) -> Result<Cluster, FsError> {
        if config.volumes == 0 {
            return Err(FsError::InvalidScenario {
                reason: "a cluster needs at least one volume",
            });
        }
        let members = (0..config.volumes)
            .map(|v| Self::fresh_member(mix_seed(config.seed, v as u64)))
            .collect();
        Ok(Cluster {
            placed: vec![0; config.volumes],
            config,
            members,
            catalog: Catalog::new(),
            cursor: 0,
            restore: None,
            obs: ObsSink::noop(),
            verify_reads: false,
        })
    }

    /// The master catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The member volumes.
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// One member, mutably (the serving loop's fetch path).
    pub fn member_mut(&mut self, volume: usize) -> &mut Member {
        &mut self.members[volume]
    }

    /// Install `obs` on every member volume (including members rebuilt
    /// by future rejoins). All members share the sink, so one monitor
    /// sees the whole cluster's event stream.
    pub fn set_obs(&mut self, obs: &ObsSink) {
        self.obs = obs.clone();
        for m in &mut self.members {
            m.mrs.set_obs(obs.clone());
        }
    }

    /// The cluster's shared sink (cheap to clone; noop by default).
    pub fn obs(&self) -> ObsSink {
        self.obs.clone()
    }

    /// Turn checksum-verified reads on or off on every member (sticky
    /// across rejoins). Verification re-hashes the fetched payload
    /// against the stamp in the strand index and surfaces a mismatch as
    /// [`FsError::ChecksumMismatch`] — the end-to-end defense against
    /// silent corruption the device itself never reports.
    pub fn set_verify_reads(&mut self, on: bool) {
        self.verify_reads = on;
        for m in &mut self.members {
            m.mrs.msm_mut().set_verify_reads(on);
        }
    }

    /// True if the member is believed servable.
    pub fn is_up(&self, volume: usize) -> bool {
        self.members[volume].state == MemberState::Up
    }

    /// Record the detection of a member failure (a read surfaced a
    /// media error). Idempotent.
    pub fn mark_down(&mut self, volume: usize) {
        self.members[volume].state = MemberState::Down;
    }

    /// Per-member placement loads under the reference stream spec.
    fn loads(&self) -> Vec<VolumeLoad> {
        let spec = standard_spec();
        self.members
            .iter()
            .enumerate()
            .map(|(v, m)| VolumeLoad {
                volume: v,
                up: m.state == MemberState::Up,
                placed: self.placed[v],
                slack: hypothetical_slack(
                    m.mrs.msm().admission_ref().env(),
                    spec,
                    self.placed[v] + 1,
                )
                .unwrap_or(strandfs_units::Nanos::ZERO),
            })
            .collect()
    }

    /// Record `clip` onto one member and build its catalog replica.
    fn record_replica(
        member: &mut Member,
        volume: usize,
        clip: &ClipSpec,
    ) -> Result<Replica, FsError> {
        let rid = record_clip(&mut member.mrs, clip)?;
        let rope = member.mrs.rope(rid)?;
        let sel = match (clip.video, clip.audio) {
            (true, false) => MediaSel::Video,
            (false, true) => MediaSel::Audio,
            _ => MediaSel::Both,
        };
        let mut schedule = compile_schedule(rope, sel, Interval::whole(rope.duration()))?;
        member.mrs.resolve_silence(&mut schedule)?;
        let mut strands: Vec<StrandLoc> = Vec::new();
        for item in schedule.items.iter().filter(|i| !i.silence) {
            if !strands.iter().any(|l| l.strand == item.strand) {
                strands.push(StrandLoc {
                    strand: item.strand,
                    blocks: member.mrs.msm().strand(item.strand)?.block_count(),
                });
            }
        }
        Ok(Replica {
            volume,
            schedule,
            strands,
            state: ReplicaState::Live,
        })
    }

    /// Ingest a title: pick volumes by policy and popularity, record
    /// the same clip on each (replicas are bit-for-bit the same
    /// content, so their schedules are structurally identical), and
    /// register the replicas in the catalog.
    pub fn ingest(
        &mut self,
        name: &str,
        clip: &ClipSpec,
        popularity: f64,
    ) -> Result<TitleId, FsError> {
        let want = self
            .config
            .placement
            .replica_count(self.config.base_replicas, popularity)
            .max(1);
        let loads = self.loads();
        let volumes = self.config.placement.choose(&mut self.cursor, want, &loads);
        if volumes.is_empty() {
            return Err(FsError::InvalidScenario {
                reason: "no live volume to place a replica on",
            });
        }
        let id = self.catalog.add_title(name, popularity);
        for v in volumes {
            let replica = Self::record_replica(&mut self.members[v], v, clip)?;
            self.placed[v] += 1;
            self.catalog.add_replica(id, replica);
        }
        Ok(id)
    }

    /// Kill a member: arm a whole-device bad-extent plan, so every
    /// future read on it surfaces a media error. The member is *not*
    /// marked down — detection happens at the read path. Returns false
    /// if the member's device does not support fault arming.
    pub fn kill(&mut self, volume: usize) -> bool {
        // A member dying mid-restore must not strand the catalog
        // half-reconciled: drop the in-flight job before the device
        // starts failing, unwinding any half-written copies on the
        // surviving member.
        self.void_restore_for(volume);
        let m = &mut self.members[volume];
        let whole = Extent {
            start: 0,
            sectors: m.mrs.msm().disk().geometry().total_sectors(),
        };
        m.mrs
            .msm_mut()
            .arm_faults(FaultPlan::clean().with_bad_extent(whole))
    }

    /// Arm an arbitrary fault plan on one member's device — silent
    /// corruption, fail-slow stretch, latency shaping. Returns false if
    /// the member's device does not support fault arming.
    pub fn arm_member_faults(&mut self, volume: usize, plan: FaultPlan) -> bool {
        self.members[volume].mrs.msm_mut().arm_faults(plan)
    }

    /// Clear every armed fault on a member (the device was serviced in
    /// place); media, catalog and member state are untouched.
    pub fn heal(&mut self, volume: usize) -> bool {
        self.arm_member_faults(volume, FaultPlan::clean())
    }

    /// Rejoin a downed member whose media survived: disarm the fault
    /// plan, remount the image through `Msm::recover` (journal replay),
    /// run fsck's repair pass, and reconcile the catalog against the
    /// recovered strand inventory. The member's rope layer does not
    /// survive the remount — by design, playback needs only the
    /// catalog's schedules.
    pub fn rejoin(&mut self, volume: usize, now: Instant) -> Result<RejoinReport, FsError> {
        let placeholder = Self::fresh_member(0);
        let old = std::mem::replace(&mut self.members[volume], placeholder);
        let mut msm = old.mrs.into_msm();
        // The media is repaired/replaced before remount; recovery must
        // be able to read the journal and every surviving block.
        msm.arm_faults(FaultPlan::clean());
        let device = msm.into_device();
        let (mut msm, recovery) = Msm::recover(device, Self::member_config(), now)?;
        let repair = fsck::repair_msm(&mut msm, recovery.finished_at);
        let mut mrs = Mrs::new(msm);
        mrs.set_obs(self.obs.clone());
        mrs.msm_mut().set_verify_reads(self.verify_reads);
        self.members[volume] = Member {
            mrs,
            state: MemberState::Up,
        };
        let reconcile = self
            .catalog
            .reconcile(volume, self.members[volume].mrs.msm());
        Ok(RejoinReport {
            volume,
            wiped: false,
            recovery: Some(recovery),
            fsck_findings: repair.findings.len(),
            reconcile,
        })
    }

    /// Rejoin a downed member with *fresh* media (the disk was
    /// replaced): every replica it held is marked lost, to be restored
    /// by background re-replication.
    pub fn rejoin_wiped(&mut self, volume: usize) -> RejoinReport {
        self.members[volume] =
            Self::fresh_member(mix_seed(self.config.seed, 0x5749_5045 ^ volume as u64));
        self.members[volume].mrs.set_obs(self.obs.clone());
        self.members[volume]
            .mrs
            .msm_mut()
            .set_verify_reads(self.verify_reads);
        let lost = self.catalog.mark_volume_lost(volume);
        self.placed[volume] = 0;
        // Any in-flight restore reading from or writing to this volume
        // is void: its source may be gone and its half-written
        // destination strands certainly are.
        self.void_restore_for(volume);
        RejoinReport {
            volume,
            wiped: true,
            recovery: None,
            fsck_findings: 0,
            reconcile: ReconcileReport {
                checked: lost,
                restored: 0,
                lost,
            },
        }
    }

    /// Run fsck (check only) over one member's volume.
    pub fn fsck_member(&mut self, volume: usize, now: Instant) -> fsck::Report {
        fsck::check_msm(self.members[volume].mrs.msm_mut(), now)
    }

    /// Aggregate admission capacity: the sum of every up member's
    /// Eq. 17 `n_max` for the given reference spec. Near-linear in the
    /// member count, since each volume admits independently.
    pub fn n_max(&self, spec: strandfs_core::admission::RequestSpec) -> usize {
        use strandfs_core::admission::Aggregates;
        self.members
            .iter()
            .filter(|m| m.state == MemberState::Up)
            .map(|m| {
                Aggregates::compute(m.mrs.msm().admission_ref().env(), &[spec])
                    .map(|a| a.n_max())
                    .unwrap_or(0)
            })
            .sum()
    }

    /// True if some lost replica could be restored right now (its
    /// volume is up and a live source exists on another up member).
    pub fn restorable_lost(&self) -> bool {
        self.catalog.lost_replicas().iter().any(|&(t, i)| {
            let r = &self.catalog.title(t).replicas[i];
            self.is_up(r.volume)
                && self
                    .catalog
                    .live_replica(t, Some(i), |v| self.is_up(v) && v != r.volume)
                    .is_some()
        })
    }

    /// Drop the in-flight restore job. With `unwind_dst` (the
    /// destination member is still healthy) its half-written strands
    /// are deleted — completed copies and the open recording one — so
    /// the member stays fsck-clean and leak-free; the replica stays
    /// `Lost` and a later pass restarts it from another live source.
    fn void_restore(&mut self, unwind_dst: bool) {
        let Some(job) = self.restore.take() else {
            return;
        };
        if !unwind_dst {
            return;
        }
        let dst = self.catalog.title(job.title).replicas[job.replica].volume;
        let msm = self.members[dst].mrs.msm_mut();
        for (_, d) in &job.map {
            let _ = msm.delete_strand(*d);
        }
        if let Some(open) = job.dst_open {
            let _ = msm.abort_strand(open);
        }
    }

    /// Void an in-flight restore touching `volume` (killed or wiped).
    /// A dying destination's half-written strands die with the device;
    /// a surviving destination (its *source* died) is unwound.
    fn void_restore_for(&mut self, volume: usize) {
        let Some(job) = &self.restore else {
            return;
        };
        let dst = self.catalog.title(job.title).replicas[job.replica].volume;
        let src = self.catalog.title(job.title).replicas[job.src_replica].volume;
        if dst == volume || src == volume {
            self.void_restore(dst != volume);
        }
    }

    /// Take a live replica out of service because scrub proved it
    /// corrupt: mark it lost, delete its strands from the (still
    /// healthy) member so the corrupt payloads can never be served
    /// again, and leave background re-replication to rebuild it from a
    /// live copy — the same path a wiped rejoin uses. Callers must
    /// first re-pin any streams playing from the replica.
    pub fn invalidate_replica(&mut self, title: TitleId, replica: usize) -> Result<(), FsError> {
        let voids = self.restore.as_ref().map(|job| {
            (
                job.title == title && (job.replica == replica || job.src_replica == replica),
                job.replica != replica,
            )
        });
        if let Some((true, unwind_dst)) = voids {
            self.void_restore(unwind_dst);
        }
        let (volume, strands, was_live) = {
            let r = &self.catalog.title(title).replicas[replica];
            (r.volume, r.strands.clone(), r.state == ReplicaState::Live)
        };
        if !was_live {
            return Ok(());
        }
        self.catalog.replica_mut(title, replica).state = ReplicaState::Lost;
        self.placed[volume] = self.placed[volume].saturating_sub(1);
        if self.is_up(volume) {
            let msm = self.members[volume].mrs.msm_mut();
            for loc in &strands {
                msm.delete_strand(loc.strand)?;
            }
        }
        Ok(())
    }

    fn next_restore_job(&self) -> Option<RestoreJob> {
        for (t, i) in self.catalog.lost_replicas() {
            let r = &self.catalog.title(t).replicas[i];
            if !self.is_up(r.volume) {
                continue;
            }
            if let Some(src) = self
                .catalog
                .live_replica(t, Some(i), |v| self.is_up(v) && v != r.volume)
            {
                return Some(RestoreJob {
                    title: t,
                    replica: i,
                    src_replica: src,
                    map: Vec::new(),
                    cur: 0,
                    block: 0,
                    dst_open: None,
                });
            }
        }
        None
    }

    /// One budgeted step of background re-replication: copy up to
    /// `max_blocks` media blocks of lost replicas from live copies on
    /// other members (reads bill the source volume, writes the
    /// destination). When a replica's last strand finishes, its
    /// schedule is rebuilt by strand-id remapping from the source
    /// replica and the copy goes live.
    pub fn re_replicate(
        &mut self,
        now: Instant,
        max_blocks: u64,
    ) -> Result<RestoreProgress, FsError> {
        let mut progress = RestoreProgress {
            finished_at: now,
            ..RestoreProgress::default()
        };
        while progress.copied_blocks < max_blocks {
            let Some(mut job) = self.restore.take().or_else(|| self.next_restore_job()) else {
                break;
            };
            let (src_v, dst_v, src_strands) = {
                let title = self.catalog.title(job.title);
                (
                    title.replicas[job.src_replica].volume,
                    title.replicas[job.replica].volume,
                    title.replicas[job.src_replica].strands.clone(),
                )
            };
            let mut t = progress.finished_at;
            // Split-borrow the two members involved.
            let (lo, hi) = (src_v.min(dst_v), src_v.max(dst_v));
            let (head, tail) = self.members.split_at_mut(hi);
            let (src_m, dst_m) = if src_v < dst_v {
                (&mut head[lo], &mut tail[0])
            } else {
                (&mut tail[0], &mut head[lo])
            };
            while job.cur < src_strands.len() && progress.copied_blocks < max_blocks {
                let loc = src_strands[job.cur];
                let (meta, unit_count) = {
                    let s = src_m.mrs.msm().strand(loc.strand)?;
                    (*s.meta(), s.unit_count())
                };
                let dst_id = match job.dst_open {
                    Some(id) => id,
                    None => {
                        let id = dst_m.mrs.msm_mut().begin_strand(meta);
                        job.dst_open = Some(id);
                        id
                    }
                };
                while job.block < loc.blocks && progress.copied_blocks < max_blocks {
                    let n = job.block;
                    let units = meta.granularity.min(unit_count - n * meta.granularity);
                    match src_m.mrs.msm_mut().read_block(loc.strand, n, t)? {
                        (None, _) => {
                            dst_m.mrs.msm_mut().append_silence(dst_id, units, t)?;
                        }
                        (Some(payload), op) => {
                            if let Some(op) = op {
                                t = t.max(op.completed);
                            }
                            let (_, wop) = dst_m
                                .mrs
                                .msm_mut()
                                .append_block(dst_id, t, &payload, units)?;
                            t = t.max(wop.completed);
                        }
                    }
                    job.block += 1;
                    progress.copied_blocks += 1;
                }
                if job.block == loc.blocks {
                    dst_m.mrs.msm_mut().finish_strand(dst_id, t)?;
                    job.map.push((loc.strand, dst_id));
                    job.dst_open = None;
                    job.block = 0;
                    job.cur += 1;
                }
            }
            progress.finished_at = progress.finished_at.max(t);
            if job.cur == src_strands.len() {
                // Rebuild the replica: the source schedule with strand
                // ids remapped onto the fresh copies.
                let mut schedule: PlaySchedule = self.catalog.title(job.title).replicas
                    [job.src_replica]
                    .schedule
                    .clone();
                for item in schedule.items.iter_mut().filter(|i| !i.silence) {
                    let (_, dst) = job
                        .map
                        .iter()
                        .find(|(s, _)| *s == item.strand)
                        .expect("every scheduled strand was copied");
                    item.strand = *dst;
                }
                let strands = src_strands
                    .iter()
                    .zip(job.map.iter())
                    .map(|(loc, (_, dst))| StrandLoc {
                        strand: *dst,
                        blocks: loc.blocks,
                    })
                    .collect();
                let replica = self.catalog.replica_mut(job.title, job.replica);
                replica.schedule = schedule;
                replica.strands = strands;
                replica.state = ReplicaState::Live;
                self.placed[dst_v] += 1;
                progress.completed_replicas += 1;
            } else {
                self.restore = Some(job);
                break;
            }
        }
        Ok(progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strandfs_units::Nanos;

    fn two_volume_cluster() -> Cluster {
        Cluster::new(ClusterConfig {
            volumes: 2,
            placement: Placement::RoundRobin,
            base_replicas: 2,
            seed: 7,
        })
        .expect("cluster")
    }

    #[test]
    fn replicas_of_one_title_have_identical_schedules() {
        let mut c = two_volume_cluster();
        let id = c
            .ingest("clip", &ClipSpec::av_seconds(1.0).with_seed(3), 0.0)
            .expect("ingest");
        let t = c.catalog().title(id);
        assert_eq!(t.replicas.len(), 2);
        let (a, b) = (&t.replicas[0], &t.replicas[1]);
        assert_ne!(a.volume, b.volume);
        assert_eq!(a.schedule.items.len(), b.schedule.items.len());
        for (x, y) in a.schedule.items.iter().zip(&b.schedule.items) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.units, y.units);
            assert_eq!(x.silence, y.silence);
        }
    }

    #[test]
    fn killed_member_rejoins_fsck_clean_and_reconciled() {
        let mut c = two_volume_cluster();
        c.ingest("clip", &ClipSpec::video_seconds(1.0), 0.0)
            .expect("ingest");
        assert!(c.kill(0));
        // Detection: a read on the killed member fails.
        let loc = c.catalog().title(0).replicas[0].strands[0];
        let err = c
            .member_mut(0)
            .mrs_mut()
            .msm_mut()
            .read_block(loc.strand, 0, Instant::EPOCH)
            .unwrap_err();
        assert!(matches!(err, FsError::MediaError { .. }), "got {err:?}");
        c.mark_down(0);
        assert!(!c.is_up(0));
        let report = c.rejoin(0, Instant::EPOCH).expect("rejoin");
        assert!(c.is_up(0));
        assert_eq!(report.fsck_findings, 0);
        assert_eq!(report.reconcile.lost, 0);
        assert!(c.fsck_member(0, Instant::EPOCH).clean());
        // The catalog's replica is servable again after recovery.
        let loc = c.catalog().title(0).replicas[0].strands[0];
        c.member_mut(0)
            .mrs_mut()
            .msm_mut()
            .read_block(loc.strand, 0, Instant::EPOCH)
            .expect("read after rejoin");
    }

    #[test]
    fn wiped_member_is_restored_by_re_replication() {
        let mut c = two_volume_cluster();
        let id = c
            .ingest("clip", &ClipSpec::av_seconds(1.0).with_seed(11), 0.0)
            .expect("ingest");
        c.kill(0);
        c.mark_down(0);
        let report = c.rejoin_wiped(0);
        assert!(report.wiped);
        assert_eq!(report.reconcile.lost, 1);
        assert!(c.restorable_lost());
        // Drain the restore queue in small budgeted steps.
        let mut t = Instant::EPOCH;
        let mut steps = 0;
        while c.restorable_lost() {
            let p = c.re_replicate(t, 8).expect("restore step");
            t = p.finished_at + Nanos::from_millis(1);
            steps += 1;
            assert!(steps < 1_000, "restore did not converge");
        }
        assert!(steps > 1, "budget should split the copy across steps");
        let replica = &c.catalog().title(id).replicas[0];
        assert_eq!(replica.state, ReplicaState::Live);
        // The restored copy is servable block-for-block.
        let items: Vec<_> = replica
            .schedule
            .items
            .iter()
            .filter(|i| !i.silence)
            .cloned()
            .collect();
        for item in items {
            c.member_mut(0)
                .mrs_mut()
                .msm_mut()
                .read_block(item.strand, item.block, t)
                .expect("restored block read");
        }
    }

    #[test]
    fn killing_the_restore_source_mid_copy_unwinds_cleanly() {
        let mut c = two_volume_cluster();
        let id = c
            .ingest("clip", &ClipSpec::av_seconds(1.0).with_seed(13), 0.0)
            .expect("ingest");
        c.kill(0);
        c.mark_down(0);
        c.rejoin_wiped(0);
        // One tiny budgeted step leaves the job in flight with a
        // half-written destination strand open on volume 0.
        let p = c.re_replicate(Instant::EPOCH, 3).expect("first step");
        assert_eq!(p.copied_blocks, 3);
        assert!(c.restore.is_some(), "the job must be in flight");
        // The *source* dies mid-copy. The job must be voided and the
        // half-written copies unwound — not resumed into a media error.
        c.kill(1);
        c.mark_down(1);
        assert!(c.restore.is_none(), "kill must void the in-flight job");
        let t = Instant::from_nanos(1_000_000_000);
        let p = c.re_replicate(t, 100).expect("no live source: a no-op");
        assert_eq!(p.copied_blocks, 0);
        // The surviving destination holds no leaked half-copies.
        assert_eq!(c.members()[0].mrs().msm().strand_ids().len(), 0);
        assert!(c.fsck_member(0, t).clean());
        assert_eq!(
            c.catalog().title(id).replicas[0].state,
            ReplicaState::Lost,
            "the replica stays lost until a live source returns"
        );
        // Once the source rejoins, restore restarts from scratch and
        // converges.
        c.rejoin(1, t).expect("rejoin source");
        let mut t = t;
        let mut steps = 0;
        while c.restorable_lost() {
            let p = c.re_replicate(t, 8).expect("restore step");
            t = p.finished_at + Nanos::from_millis(1);
            steps += 1;
            assert!(steps < 1_000, "restore did not converge");
        }
        assert_eq!(c.catalog().title(id).replicas[0].state, ReplicaState::Live);
        assert!(c.fsck_member(0, t).clean());
    }

    #[test]
    fn invalidated_replica_is_deleted_and_restored_from_the_live_copy() {
        let mut c = two_volume_cluster();
        let id = c
            .ingest("clip", &ClipSpec::video_seconds(1.0).with_seed(17), 0.0)
            .expect("ingest");
        let strands_before = c.members()[0].mrs().msm().strand_ids().len();
        assert!(strands_before > 0);
        c.invalidate_replica(id, 0).expect("invalidate");
        assert_eq!(c.catalog().title(id).replicas[0].state, ReplicaState::Lost);
        assert_eq!(
            c.members()[0].mrs().msm().strand_ids().len(),
            0,
            "corrupt strands must be deleted, not served"
        );
        assert!(c.fsck_member(0, Instant::EPOCH).clean());
        // The lost copy is rebuilt through the ordinary restore path.
        let mut t = Instant::EPOCH;
        while c.restorable_lost() {
            let p = c.re_replicate(t, 16).expect("restore step");
            t = p.finished_at + Nanos::from_millis(1);
        }
        assert_eq!(c.catalog().title(id).replicas[0].state, ReplicaState::Live);
        assert!(c.fsck_member(0, t).clean());
    }

    #[test]
    fn n_max_scales_with_up_members() {
        let spec = standard_spec();
        let c1 = Cluster::new(ClusterConfig::round_robin(1, 1)).unwrap();
        let c4 = Cluster::new(ClusterConfig::round_robin(4, 1)).unwrap();
        let per = c1.n_max(spec);
        assert!(per >= 1);
        assert_eq!(c4.n_max(spec), 4 * per);
    }
}
