//! Replica placement policies: where a new title's copies land.
//!
//! Placement sees one [`VolumeLoad`] row per member and picks distinct
//! volumes for the requested replica count. The load-aware policies
//! rank members by *live Eq. 18 slack*: the steady-state per-block
//! margin `γ − n·β` each volume would retain if it took one more
//! stream of the reference workload (the `k → ∞` limit of Eq. 18,
//! which round-size adaptation cannot mask). Slack — not stream
//! count — is the paper's own currency for "room on this disk": a
//! volume serving three audio streams has more headroom than one
//! serving three video streams, and Eq. 18 is what knows the
//! difference.

use strandfs_core::admission::{Aggregates, RequestSpec, ServiceEnv};
use strandfs_units::{Bits, Nanos, Seconds};

/// The reference request used to compare volume headroom: the standard
/// NTSC video stream (`q = 3` frames/block, 96 kbit frames, 30 fps).
pub fn standard_spec() -> RequestSpec {
    RequestSpec {
        q: 3,
        unit_bits: Bits::new(96_000),
        unit_rate: 30.0,
    }
}

/// Eq. 18 slack a volume would retain serving `streams` copies of
/// `spec`: the steady-state per-block margin `γ − n·β`. Raw round
/// slack `k·γ − (n·α + n·k·β)` is not monotone in `n` — the
/// transient-safe round size `k` grows with load and hides the seek
/// overhead — so placement compares the `k → ∞` limit, which
/// adaptation cannot mask. `None` when the load is infeasible (no
/// transient-safe round size exists — the volume cannot take that
/// many streams at all).
pub fn hypothetical_slack(env: &ServiceEnv, spec: RequestSpec, streams: usize) -> Option<Nanos> {
    let n = streams.max(1);
    let agg = Aggregates::compute(env, &[spec])?;
    agg.k_transient(n)?;
    let slack = agg.gamma.get() - n as f64 * agg.beta.get();
    (slack > 0.0).then(|| Seconds::new(slack).to_nanos())
}

/// One member's standing at placement time.
#[derive(Clone, Copy, Debug)]
pub struct VolumeLoad {
    /// The member index.
    pub volume: usize,
    /// Whether the member is serving (down members never take replicas).
    pub up: bool,
    /// Replicas already placed on the member.
    pub placed: usize,
    /// Steady-state Eq. 18 slack if the member took one more reference
    /// stream ([`hypothetical_slack`] with `placed + 1`); zero when
    /// infeasible.
    pub slack: Nanos,
}

/// How replicas are spread across members.
#[derive(Clone, Copy, Debug)]
pub enum Placement {
    /// Cycle through up members in index order.
    RoundRobin,
    /// Most Eq. 18 slack first (ties: fewest replicas, lowest index).
    LeastLoaded,
    /// [`Placement::LeastLoaded`] ranking, plus extra replicas for hot
    /// titles: a title at or above `hot_threshold` popularity gets
    /// `extra` copies beyond the cluster's base replica count.
    Popularity {
        /// Popularity at or above which a title counts as hot.
        hot_threshold: f64,
        /// Additional replicas a hot title receives.
        extra: usize,
    },
}

impl Placement {
    /// Replica count for a title of the given popularity.
    pub fn replica_count(&self, base: usize, popularity: f64) -> usize {
        match self {
            Placement::Popularity {
                hot_threshold,
                extra,
            } if popularity >= *hot_threshold => base + extra,
            _ => base,
        }
    }

    /// Pick up to `want` distinct up volumes. `cursor` is the
    /// round-robin rotation state (ignored by the load-aware policies).
    /// Returns fewer than `want` when the cluster has fewer up members.
    pub fn choose(&self, cursor: &mut usize, want: usize, loads: &[VolumeLoad]) -> Vec<usize> {
        let mut up: Vec<&VolumeLoad> = loads.iter().filter(|l| l.up).collect();
        if up.is_empty() {
            return Vec::new();
        }
        match self {
            Placement::RoundRobin => {
                let picks = (0..want.min(up.len()))
                    .map(|i| up[(*cursor + i) % up.len()].volume)
                    .collect();
                *cursor = (*cursor + want) % up.len();
                picks
            }
            Placement::LeastLoaded | Placement::Popularity { .. } => {
                up.sort_by(|a, b| {
                    b.slack
                        .cmp(&a.slack)
                        .then(a.placed.cmp(&b.placed))
                        .then(a.volume.cmp(&b.volume))
                });
                up.iter().take(want).map(|l| l.volume).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads(slacks: &[(bool, usize, u64)]) -> Vec<VolumeLoad> {
        slacks
            .iter()
            .enumerate()
            .map(|(volume, &(up, placed, ms))| VolumeLoad {
                volume,
                up,
                placed,
                slack: Nanos::from_millis(ms),
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles_over_up_members_only() {
        let l = loads(&[(true, 0, 0), (false, 0, 0), (true, 0, 0)]);
        let p = Placement::RoundRobin;
        let mut cursor = 0;
        assert_eq!(p.choose(&mut cursor, 1, &l), vec![0]);
        assert_eq!(p.choose(&mut cursor, 1, &l), vec![2]);
        assert_eq!(p.choose(&mut cursor, 1, &l), vec![0]);
        // A 2-replica pick never lands both copies on one volume.
        cursor = 0;
        assert_eq!(p.choose(&mut cursor, 2, &l), vec![0, 2]);
    }

    #[test]
    fn least_loaded_prefers_the_most_slack() {
        let l = loads(&[(true, 2, 100), (true, 0, 400), (true, 1, 250)]);
        let mut cursor = 0;
        assert_eq!(
            Placement::LeastLoaded.choose(&mut cursor, 2, &l),
            vec![1, 2]
        );
    }

    #[test]
    fn least_loaded_ties_break_by_placed_then_volume_id() {
        // Equal slack everywhere: fewest-placed wins, then lowest id.
        let l = loads(&[(true, 1, 300), (true, 0, 300), (true, 0, 300)]);
        let mut cursor = 7; // cursor must be ignored by load-aware policies
        assert_eq!(
            Placement::LeastLoaded.choose(&mut cursor, 3, &l),
            vec![1, 2, 0]
        );
        assert_eq!(cursor, 7);
        // Fully symmetric members: stable ascending volume-id order, so
        // placement is deterministic run-to-run regardless of input
        // order quirks.
        let sym = loads(&[(true, 0, 300), (true, 0, 300), (true, 0, 300)]);
        for want in 1..=3 {
            assert_eq!(
                Placement::LeastLoaded.choose(&mut cursor, want, &sym),
                (0..want).collect::<Vec<_>>()
            );
        }
        // Popularity ranks identically to LeastLoaded.
        let pop = Placement::Popularity {
            hot_threshold: 0.8,
            extra: 1,
        };
        assert_eq!(pop.choose(&mut cursor, 3, &l), vec![1, 2, 0]);
    }

    #[test]
    fn popularity_boosts_hot_titles() {
        let p = Placement::Popularity {
            hot_threshold: 0.8,
            extra: 1,
        };
        assert_eq!(p.replica_count(1, 0.9), 2);
        assert_eq!(p.replica_count(1, 0.5), 1);
        assert_eq!(Placement::RoundRobin.replica_count(1, 0.9), 1);
    }

    #[test]
    fn hypothetical_slack_shrinks_with_load_and_runs_out() {
        use strandfs_core::msm::{Msm, MsmConfig};
        use strandfs_disk::{DiskGeometry, GapBounds, SeekModel, SimDisk};
        let msm = Msm::new(
            SimDisk::new(DiskGeometry::vintage_1991(), SeekModel::vintage_1991()),
            MsmConfig::constrained(
                GapBounds {
                    min_sectors: 0,
                    max_sectors: 40_000,
                },
                1,
            ),
        );
        let env = *msm.admission_ref().env();
        let spec = standard_spec();
        let s1 = hypothetical_slack(&env, spec, 1).expect("1 stream fits");
        let s2 = hypothetical_slack(&env, spec, 2).expect("2 streams fit");
        assert!(s2 < s1, "slack must shrink with load: {s1:?} -> {s2:?}");
        // The vintage disk admits n_max = 2 of the standard stream.
        assert_eq!(hypothetical_slack(&env, spec, 3), None);
    }
}
