//! The master catalog: titles → replicas → (volume, strands, schedule).
//!
//! The catalog is the cluster's only global state. Each replica pins a
//! title to one volume and carries everything a server needs to play it
//! there without touching the member's rope layer: the compiled (and
//! silence-resolved) [`PlaySchedule`] plus the strand inventory the
//! schedule references. Keeping schedules in the catalog is what makes
//! failover and rejoin cheap — ropes do not survive `Msm::recover`
//! (they are MRS-layer state), but a catalog schedule replays against
//! the recovered strand inventory unchanged.

use strandfs_core::mrs::PlaySchedule;
use strandfs_core::msm::Msm;
use strandfs_core::StrandId;

/// Index of a title in the catalog.
pub type TitleId = usize;

/// Whether a replica's blocks are believed present on its volume.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReplicaState {
    /// The replica is servable.
    Live,
    /// The replica's volume lost it (wiped rejoin, or reconciliation
    /// found strands missing); a background pass may restore it.
    Lost,
}

/// One strand a replica stores, with the block count the catalog
/// expects — the reconciliation invariant checked after a rejoin.
#[derive(Clone, Copy, Debug)]
pub struct StrandLoc {
    /// The strand on the replica's volume.
    pub strand: StrandId,
    /// Blocks the strand must hold (silence holes included).
    pub blocks: u64,
}

/// One copy of a title on one volume.
#[derive(Clone, Debug)]
pub struct Replica {
    /// The member volume holding this copy.
    pub volume: usize,
    /// The compiled, silence-resolved whole-title schedule. Replicas of
    /// one title are recorded from the same clip spec, so their
    /// schedules are structurally identical (same item count, offsets
    /// and durations) and differ only in strand/block addresses — the
    /// property mid-playback failover relies on.
    pub schedule: PlaySchedule,
    /// The strands the schedule references, with expected block counts.
    pub strands: Vec<StrandLoc>,
    /// Whether the copy is currently believed servable.
    pub state: ReplicaState,
}

/// A title: a named recording with one or more replicas.
#[derive(Clone, Debug)]
pub struct Title {
    /// Human-readable name.
    pub name: String,
    /// Popularity weight in `[0, 1]`; drives k-replication under
    /// popularity-aware placement.
    pub popularity: f64,
    /// The title's replicas, in placement order.
    pub replicas: Vec<Replica>,
}

/// What catalog reconciliation found on a rejoined volume.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReconcileReport {
    /// Replicas on the volume that were checked.
    pub checked: usize,
    /// Previously-lost replicas found fully present and marked live.
    pub restored: usize,
    /// Replicas with missing or truncated strands, marked lost.
    pub lost: usize,
}

/// The master catalog of a cluster.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    titles: Vec<Title>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a title with no replicas yet.
    pub fn add_title(&mut self, name: &str, popularity: f64) -> TitleId {
        self.titles.push(Title {
            name: name.to_string(),
            popularity,
            replicas: Vec::new(),
        });
        self.titles.len() - 1
    }

    /// Attach a recorded replica to a title.
    pub fn add_replica(&mut self, id: TitleId, replica: Replica) {
        self.titles[id].replicas.push(replica);
    }

    /// The title's entry.
    pub fn title(&self, id: TitleId) -> &Title {
        &self.titles[id]
    }

    /// All titles, in registration order.
    pub fn titles(&self) -> &[Title] {
        &self.titles
    }

    /// Mutable access to one replica (used by the restore pass).
    pub fn replica_mut(&mut self, id: TitleId, replica: usize) -> &mut Replica {
        &mut self.titles[id].replicas[replica]
    }

    /// The first live replica of `id` on a volume `up` accepts,
    /// excluding `not` (the replica being failed away from).
    pub fn live_replica(
        &self,
        id: TitleId,
        not: Option<usize>,
        up: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        self.titles[id]
            .replicas
            .iter()
            .enumerate()
            .find(|(i, r)| Some(*i) != not && r.state == ReplicaState::Live && up(r.volume))
            .map(|(i, _)| i)
    }

    /// Mark every replica on `volume` lost (a wiped rejoin). Returns
    /// how many replicas flipped.
    pub fn mark_volume_lost(&mut self, volume: usize) -> usize {
        let mut flipped = 0;
        for t in &mut self.titles {
            for r in &mut t.replicas {
                if r.volume == volume && r.state == ReplicaState::Live {
                    r.state = ReplicaState::Lost;
                    flipped += 1;
                }
            }
        }
        flipped
    }

    /// Lost replicas, as `(title, replica index)` coordinates.
    pub fn lost_replicas(&self) -> Vec<(TitleId, usize)> {
        let mut out = Vec::new();
        for (t, title) in self.titles.iter().enumerate() {
            for (i, r) in title.replicas.iter().enumerate() {
                if r.state == ReplicaState::Lost {
                    out.push((t, i));
                }
            }
        }
        out
    }

    /// Reconcile the catalog against a rejoined volume's strand
    /// inventory: a replica is servable iff every strand it references
    /// exists with the expected block count. Lost replicas found whole
    /// are restored; live replicas found broken are demoted.
    pub fn reconcile(&mut self, volume: usize, msm: &Msm) -> ReconcileReport {
        let mut report = ReconcileReport::default();
        for t in &mut self.titles {
            for r in &mut t.replicas {
                if r.volume != volume {
                    continue;
                }
                report.checked += 1;
                let whole = r.strands.iter().all(|loc| {
                    msm.strand(loc.strand)
                        .map(|s| s.block_count() == loc.blocks)
                        .unwrap_or(false)
                });
                match (whole, r.state) {
                    (true, ReplicaState::Lost) => {
                        r.state = ReplicaState::Live;
                        report.restored += 1;
                    }
                    (false, ReplicaState::Live) => {
                        r.state = ReplicaState::Lost;
                        report.lost += 1;
                    }
                    _ => {}
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stub_replica(volume: usize) -> Replica {
        Replica {
            volume,
            schedule: PlaySchedule::default(),
            strands: Vec::new(),
            state: ReplicaState::Live,
        }
    }

    #[test]
    fn live_replica_skips_down_volumes_and_the_excluded_copy() {
        let mut c = Catalog::new();
        let id = c.add_title("clip", 0.5);
        c.add_replica(id, stub_replica(0));
        c.add_replica(id, stub_replica(1));
        c.add_replica(id, stub_replica(2));
        // All up: first replica wins.
        assert_eq!(c.live_replica(id, None, |_| true), Some(0));
        // Excluding the first and with volume 1 down, only 2 remains.
        assert_eq!(c.live_replica(id, Some(0), |v| v != 1), Some(2));
        // Nothing survives when everything is down.
        assert_eq!(c.live_replica(id, None, |_| false), None);
    }

    #[test]
    fn mark_volume_lost_flips_only_that_volume() {
        let mut c = Catalog::new();
        let a = c.add_title("a", 0.0);
        c.add_replica(a, stub_replica(0));
        c.add_replica(a, stub_replica(1));
        let b = c.add_title("b", 0.0);
        c.add_replica(b, stub_replica(1));
        assert_eq!(c.mark_volume_lost(1), 2);
        assert_eq!(c.lost_replicas(), vec![(a, 1), (b, 0)]);
        // Idempotent: already-lost replicas don't flip again.
        assert_eq!(c.mark_volume_lost(1), 0);
    }
}
