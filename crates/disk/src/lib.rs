//! A deterministic disk simulator for continuous-media storage research.
//!
//! The continuity analysis of Rangan & Vin (SOSP '91) consumes three disk
//! characteristics: seek time, rotational latency and transfer rate. This
//! crate models all three mechanistically — cylinder geometry with a
//! configurable seek-time curve, a platter whose angular position is a
//! function of virtual time, and per-track transfer — so that every media
//! block access yields an exact, reproducible service time with the same
//! `seek + rotation + transfer` structure as a physical drive.
//!
//! On top of the raw device the crate provides:
//!
//! * [`DiskArray`] — `p` independently-seeking actuators for the paper's
//!   *concurrent* (RAID-like) retrieval architecture;
//! * [`FreeMap`] — sector-granularity free-space tracking with extent
//!   search;
//! * [`alloc`] — the three placement policies the paper contrasts:
//!   *random* (the conventional-file-server strawman), *contiguous* (the
//!   fragmentation-prone alternative) and *constrained* (the paper's
//!   scattering-bounded policy), plus gap infill for non-real-time data;
//! * [`fault`] — deterministic, seeded fault injection behind the small
//!   [`BlockDevice`] trait: permanently bad extents, transient read
//!   errors with success-after-N-retries, PRNG latency spikes and
//!   region-wide degraded-transfer windows;
//! * [`trace`] — per-operation traces and utilization statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
mod array;
mod disk;
pub mod fault;
mod freemap;
mod geometry;
mod seek;
pub mod trace;

pub use alloc::{AllocError, AllocPolicy, Allocator, GapBounds};
pub use array::{DiskArray, StripedExtent};
pub use disk::{fnv1a, AccessKind, DiskOp, SimDisk};
pub use fault::{
    AccessResult, BlockDevice, CrashPoint, DegradedWindow, FaultInjector, FaultKind, FaultPlan,
    FaultStats, Faulted, RandomTransients, SilentCorruption, SpikeCfg, TransientFault,
};
pub use freemap::FreeMap;
pub use geometry::{DiskGeometry, Extent, Lba};
pub use seek::SeekModel;
