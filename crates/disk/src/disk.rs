//! The simulated disk: a single actuator, a spinning platter, and a sparse
//! sector store.

use crate::geometry::{DiskGeometry, Extent, Lba};
use crate::seek::SeekModel;
use crate::trace::DiskStats;
use std::collections::HashMap;
use strandfs_obs::{AccessDir, Event, ObsSink};
use strandfs_units::{Instant, Nanos, Seconds};

/// FNV-1a-64 over a byte slice — the crate-wide payload checksum (the
/// same parameters as [`SimDisk::content_hash`], no external
/// dependency). Every stored media block's sum is computed with this
/// function at write time and re-checked on verified reads and scrubs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Whether an access reads or writes the medium.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// Transfer from medium to host.
    Read,
    /// Transfer from host to medium.
    Write,
}

/// The fully-decomposed timing of one disk operation.
#[derive(Clone, Copy, Debug)]
pub struct DiskOp {
    /// The extent accessed.
    pub extent: Extent,
    /// Read or write.
    pub kind: AccessKind,
    /// When the operation was issued.
    pub issued: Instant,
    /// Arm movement time.
    pub seek: Nanos,
    /// Rotational delay waiting for the first sector.
    pub rotation: Nanos,
    /// Media transfer time (including head/track switches).
    pub transfer: Nanos,
    /// Completion instant (`issued + seek + rotation + transfer`).
    pub completed: Instant,
}

impl DiskOp {
    /// Total service time of the operation.
    #[inline]
    pub fn service_time(&self) -> Nanos {
        self.completed - self.issued
    }

    /// Positioning overhead (seek + rotation), the paper's per-block
    /// "scattering" cost.
    #[inline]
    pub fn positioning(&self) -> Nanos {
        self.seek + self.rotation
    }
}

/// A simulated disk drive.
///
/// The drive is deterministic: given the same sequence of `(issue time,
/// extent)` accesses it produces the same service times. The platter's
/// angular position is derived from the issue time (`rpm` revolutions per
/// minute since t=0), the arm position is the cylinder of the last access,
/// and transfer crosses track/cylinder boundaries paying head-switch and
/// track-to-track seek costs.
///
/// Sector payloads are stored sparsely; unwritten sectors read back as
/// zeroes, like a freshly-formatted drive.
#[derive(Debug)]
pub struct SimDisk {
    geometry: DiskGeometry,
    seek_model: SeekModel,
    head_cylinder: u64,
    store: HashMap<Lba, Box<[u8]>>,
    stats: DiskStats,
    obs: ObsSink,
}

impl SimDisk {
    /// A new disk with the head parked at cylinder 0 and observability
    /// disabled.
    pub fn new(geometry: DiskGeometry, seek_model: SeekModel) -> Self {
        SimDisk {
            geometry,
            seek_model,
            head_cylinder: 0,
            store: HashMap::new(),
            stats: DiskStats::default(),
            obs: ObsSink::noop(),
        }
    }

    /// The disk's geometry.
    #[inline]
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geometry
    }

    /// The disk's seek model.
    #[inline]
    pub fn seek_model(&self) -> &SeekModel {
        &self.seek_model
    }

    /// The cylinder the arm currently rests on.
    #[inline]
    pub fn head_cylinder(&self) -> u64 {
        self.head_cylinder
    }

    /// Cumulative operation statistics.
    #[inline]
    pub fn stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Route this disk's [`Event::DiskOp`] stream into `obs`.
    pub fn set_obs(&mut self, obs: ObsSink) {
        self.obs = obs;
    }

    /// Worst-case positioning time: full-stroke seek plus one full
    /// rotation — the paper's `l_seek_max` (seek *and* latency maximum).
    pub fn max_positioning_time(&self) -> Seconds {
        self.seek_model.max_seek(self.geometry.cylinders) + self.geometry.rotation_time()
    }

    /// Expected positioning time for a move of `cylinder_distance`
    /// cylinders: seek plus average (half-rotation) latency. This is the
    /// deterministic gap-time estimate the allocators and the analytic
    /// model share.
    pub fn positioning_time(&self, cylinder_distance: u64) -> Seconds {
        self.seek_model.seek_time(cylinder_distance) + self.geometry.rotation_time() / 2.0
    }

    /// Expected gap time between two extents: positioning from the end of
    /// `from` to the start of `to`.
    pub fn gap_time(&self, from: Extent, to: Extent) -> Seconds {
        let d = self
            .geometry
            .cylinder_distance(from.end().saturating_sub(1), to.start);
        self.positioning_time(d)
    }

    /// Perform a timed access of `extent`, returning its decomposed
    /// timing. Panics if the extent is off-device (a file-system bug, not
    /// an I/O error — real drivers validate requests before issue).
    pub fn access(&mut self, now: Instant, extent: Extent, kind: AccessKind) -> DiskOp {
        assert!(
            self.geometry.extent_valid(extent),
            "access beyond device: {extent:?} on {} sectors",
            self.geometry.total_sectors()
        );

        let target_cyl = self.geometry.cylinder_of(extent.start);
        let distance = target_cyl.abs_diff(self.head_cylinder);
        let seek = self.seek_model.seek_time(distance).to_nanos();

        // Rotational delay: the platter angle is a pure function of time.
        let at_cylinder = now + seek;
        let rotation = self.rotational_delay(at_cylinder, extent.start);

        let transfer = self.transfer_time(extent);

        let completed = at_cylinder + rotation + transfer;
        self.head_cylinder = self.geometry.cylinder_of(extent.end() - 1);

        let op = DiskOp {
            extent,
            kind,
            issued: now,
            seek,
            rotation,
            transfer,
            completed,
        };
        self.stats.record(&op);
        self.obs.emit(|| Event::DiskOp {
            dir: match kind {
                AccessKind::Read => AccessDir::Read,
                AccessKind::Write => AccessDir::Write,
            },
            lba: extent.start,
            sectors: extent.sectors,
            cylinder: target_cyl,
            cyl_distance: distance,
            issued: now,
            seek,
            rotation,
            transfer,
        });
        op
    }

    /// Rotational wait from `at` until sector `lba` first passes under the
    /// head.
    ///
    /// Nanosecond quantization can make a head that is exactly on the
    /// target sector appear a few nanoseconds past it, turning a zero wait
    /// into a full revolution; waits within `ROT_EPSILON_NS` of a full
    /// revolution are therefore treated as zero.
    fn rotational_delay(&self, at: Instant, lba: Lba) -> Nanos {
        const ROT_EPSILON_NS: u64 = 256;
        let rot_ns = self.geometry.rotation_time().to_nanos().as_nanos();
        if rot_ns == 0 {
            return Nanos::ZERO;
        }
        let spt = self.geometry.sectors_per_track;
        let target_angle_ns =
            (self.geometry.sector_of(lba) as f64 / spt as f64 * rot_ns as f64) as u64;
        let now_angle_ns = at.as_nanos() % rot_ns;
        let wait = if target_angle_ns >= now_angle_ns {
            target_angle_ns - now_angle_ns
        } else {
            rot_ns - (now_angle_ns - target_angle_ns)
        };
        if wait + ROT_EPSILON_NS >= rot_ns {
            Nanos::ZERO
        } else {
            Nanos::from_nanos(wait)
        }
    }

    /// Media transfer time for `extent`, paying a head switch at every
    /// track boundary and a track-to-track seek at every cylinder boundary.
    fn transfer_time(&self, extent: Extent) -> Nanos {
        let g = &self.geometry;
        let sector = g.sector_time().to_nanos();
        let mut total = sector.mul_u64(extent.sectors);
        // Boundary crossings within the run.
        let first_track = extent.start / g.sectors_per_track;
        let last_track = (extent.end() - 1) / g.sectors_per_track;
        let track_switches = last_track - first_track;
        let first_cyl = g.cylinder_of(extent.start);
        let last_cyl = g.cylinder_of(extent.end() - 1);
        let cyl_switches = last_cyl - first_cyl;
        total += g.head_switch.to_nanos().mul_u64(track_switches);
        total += self
            .seek_model
            .seek_time(1)
            .to_nanos()
            .mul_u64(cyl_switches);
        total
    }

    /// Write `data` into `extent` (data length must equal the extent's
    /// byte size). Only the payload store is touched; use [`Self::access`]
    /// for timing.
    pub fn store_data(&mut self, extent: Extent, data: &[u8]) {
        let ss = self.geometry.sector_size.get() as usize;
        assert_eq!(
            data.len(),
            ss * extent.sectors as usize,
            "payload length must match extent size"
        );
        for (i, chunk) in data.chunks(ss).enumerate() {
            self.store
                .insert(extent.start + i as u64, chunk.to_vec().into_boxed_slice());
        }
    }

    /// Read the payload of `extent`, or `None` if any part of the extent
    /// lies off the device. The checked variant the storage manager uses:
    /// a corrupt on-disk pointer surfaces as an error, not a panic or a
    /// silent zero-fill.
    pub fn try_fetch(&self, extent: Extent) -> Option<Vec<u8>> {
        if !self.geometry.extent_valid(extent) {
            return None;
        }
        Some(self.fetch_data(extent))
    }

    /// Read the payload of `extent`; unwritten sectors come back zeroed.
    pub fn fetch_data(&self, extent: Extent) -> Vec<u8> {
        let ss = self.geometry.sector_size.get() as usize;
        let mut out = vec![0u8; ss * extent.sectors as usize];
        for i in 0..extent.sectors {
            if let Some(sector) = self.store.get(&(extent.start + i)) {
                let off = i as usize * ss;
                out[off..off + ss].copy_from_slice(sector);
            }
        }
        out
    }

    /// FNV-1a sum of the payload of `extent` (unwritten sectors count
    /// as zeroes), or `None` off-device — [`fnv1a`] of
    /// [`SimDisk::try_fetch`] without materializing the copy. The
    /// verified-read and scrub paths call this per block, so it must
    /// not allocate.
    pub fn fetch_sum(&self, extent: Extent) -> Option<u64> {
        if !self.geometry.extent_valid(extent) {
            return None;
        }
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let ss = self.geometry.sector_size.get() as usize;
        let mut h = OFFSET;
        for i in 0..extent.sectors {
            match self.store.get(&(extent.start + i)) {
                Some(sector) => {
                    for &b in sector.iter() {
                        h ^= b as u64;
                        h = h.wrapping_mul(PRIME);
                    }
                }
                None => {
                    for _ in 0..ss {
                        h = h.wrapping_mul(PRIME);
                    }
                }
            }
        }
        Some(h)
    }

    /// Drop the payload of `extent` (models discard; timing-neutral).
    pub fn discard_data(&mut self, extent: Extent) {
        for i in 0..extent.sectors {
            self.store.remove(&(extent.start + i));
        }
    }

    /// Number of sectors currently holding written payloads.
    pub fn sectors_written(&self) -> usize {
        self.store.len()
    }

    /// FNV-1a hash over every written sector in address order: a stable
    /// fingerprint of the device image for byte-identity assertions
    /// (crash-point determinism — same plan, seed and access sequence
    /// must freeze byte-identical post-crash images).
    pub fn content_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut lbas: Vec<Lba> = self.store.keys().copied().collect();
        lbas.sort_unstable();
        let mut h = OFFSET;
        for lba in lbas {
            for byte in lba.to_le_bytes() {
                h = (h ^ byte as u64).wrapping_mul(PRIME);
            }
            for &byte in self.store[&lba].iter() {
                h = (h ^ byte as u64).wrapping_mul(PRIME);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> SimDisk {
        SimDisk::new(DiskGeometry::tiny_test(), SeekModel::vintage_1991())
    }

    #[test]
    fn access_timing_decomposes() {
        let mut d = disk();
        let op = d.access(Instant::EPOCH, Extent::new(0, 4), AccessKind::Read);
        assert_eq!(op.seek, Nanos::ZERO, "head starts at cylinder 0");
        assert_eq!(
            op.completed,
            Instant::EPOCH + op.seek + op.rotation + op.transfer
        );
        assert_eq!(op.service_time(), op.seek + op.rotation + op.transfer);
        // 4 sectors at tiny geometry: 4 * (1/60/16) s, up to per-sector
        // nanosecond rounding.
        let expect = Seconds::new(4.0 / 60.0 / 16.0).to_nanos();
        let delta = expect.max(op.transfer) - expect.min(op.transfer);
        assert!(delta < Nanos::from_nanos(16), "delta = {delta}");
    }

    #[test]
    fn seek_charged_for_cylinder_moves() {
        let mut d = disk();
        let far = d.geometry().sectors_per_cylinder() * 40; // cylinder 40
        let op = d.access(Instant::EPOCH, Extent::new(far, 1), AccessKind::Read);
        assert!(op.seek > Nanos::ZERO);
        assert_eq!(d.head_cylinder(), 40);
        // Returning to cylinder 40 is then free of seek.
        let op2 = d.access(op.completed, Extent::new(far + 1, 1), AccessKind::Read);
        assert_eq!(op2.seek, Nanos::ZERO);
    }

    #[test]
    fn rotation_bounded_by_one_revolution() {
        let mut d = disk();
        let rev = d.geometry().rotation_time().to_nanos();
        let mut t = Instant::EPOCH;
        for i in 0..50 {
            let lba = (i * 7) % d.geometry().total_sectors();
            let op = d.access(t, Extent::new(lba, 1), AccessKind::Read);
            assert!(op.rotation < rev, "rotation {} >= rev {}", op.rotation, rev);
            t = op.completed;
        }
    }

    #[test]
    fn rotation_is_time_dependent_but_deterministic() {
        let mut d1 = disk();
        let mut d2 = disk();
        let e = Extent::new(5, 1);
        let a = d1.access(
            Instant::EPOCH + Nanos::from_micros(123),
            e,
            AccessKind::Read,
        );
        let b = d2.access(
            Instant::EPOCH + Nanos::from_micros(123),
            e,
            AccessKind::Read,
        );
        assert_eq!(a.rotation, b.rotation);
        assert_eq!(a.completed, b.completed);
    }

    #[test]
    fn sequential_same_track_reads_have_zero_rotation_gap() {
        // After reading sector s, sector s+1 is immediately under the head.
        let mut d = disk();
        let op1 = d.access(Instant::EPOCH, Extent::new(0, 1), AccessKind::Read);
        let op2 = d.access(op1.completed, Extent::new(1, 1), AccessKind::Read);
        assert_eq!(op2.rotation, Nanos::ZERO);
        assert_eq!(op2.seek, Nanos::ZERO);
    }

    #[test]
    fn transfer_pays_track_and_cylinder_switches() {
        let mut d = disk();
        let g = *d.geometry();
        // Span one full cylinder boundary: start on last track of cyl 0.
        let start = g.sectors_per_cylinder() - 2;
        let op = d.access(Instant::EPOCH, Extent::new(start, 4), AccessKind::Read);
        let plain = g.sector_time().to_nanos().mul_u64(4);
        assert!(op.transfer > plain, "boundary crossing must cost extra");
    }

    #[test]
    #[should_panic(expected = "access beyond device")]
    fn off_device_access_panics() {
        let mut d = disk();
        let total = d.geometry().total_sectors();
        d.access(Instant::EPOCH, Extent::new(total - 1, 2), AccessKind::Read);
    }

    #[test]
    fn payload_round_trip_and_zero_fill() {
        let mut d = disk();
        let e = Extent::new(10, 2);
        let data = vec![0xAB; 1024];
        d.store_data(e, &data);
        assert_eq!(d.fetch_data(e), data);
        // Unwritten sector reads back zeroed.
        let z = d.fetch_data(Extent::new(12, 1));
        assert!(z.iter().all(|&b| b == 0));
        d.discard_data(e);
        assert_eq!(d.sectors_written(), 0);
        assert!(d.fetch_data(e).iter().all(|&b| b == 0));
    }

    #[test]
    fn fetch_sum_matches_fnv_of_fetched_bytes() {
        let mut d = disk();
        let e = Extent::new(20, 3);
        let mut data = vec![0u8; 3 * 512];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        d.store_data(e, &data);
        assert_eq!(d.fetch_sum(e), Some(fnv1a(&data)));
        // Partially-written extents hash the zero-fill, same as fetch.
        let partial = Extent::new(21, 4);
        assert_eq!(
            d.fetch_sum(partial),
            Some(fnv1a(&d.fetch_data(partial))),
            "unwritten sectors hash as zeroes"
        );
        // Off-device is a corrupt pointer, not a panic.
        let total = d.geometry().total_sectors();
        assert_eq!(d.fetch_sum(Extent::new(total - 1, 2)), None);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = disk();
        let op1 = d.access(Instant::EPOCH, Extent::new(0, 2), AccessKind::Read);
        let _ = d.access(op1.completed, Extent::new(100, 2), AccessKind::Write);
        assert_eq!(d.stats().reads, 1);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().sectors_transferred, 4);
    }

    #[test]
    fn obs_events_mirror_ops_exactly() {
        let (sink, recorder) = ObsSink::ring(16);
        let mut d = disk();
        d.set_obs(sink);
        let op1 = d.access(Instant::EPOCH, Extent::new(0, 2), AccessKind::Read);
        let op2 = d.access(op1.completed, Extent::new(100, 2), AccessKind::Write);
        let r = recorder.borrow();
        let events: Vec<_> = r.events().collect();
        assert_eq!(events.len(), 2);
        match events[1] {
            Event::DiskOp {
                dir,
                lba,
                sectors,
                seek,
                rotation,
                transfer,
                ..
            } => {
                assert_eq!(*dir, AccessDir::Write);
                assert_eq!(*lba, 100);
                assert_eq!(*sectors, 2);
                assert_eq!(*seek + *rotation + *transfer, op2.service_time());
            }
            e => panic!("unexpected event {e:?}"),
        }
        // Cumulative obs metrics agree with the disk's own stats.
        assert_eq!(r.disk_service_total(), d.stats().busy_time());
    }

    #[test]
    fn gap_time_uses_cylinder_distance() {
        let d = disk();
        let g = *d.geometry();
        let a = Extent::new(0, 2);
        let near = Extent::new(4, 2);
        let far = Extent::new(g.sectors_per_cylinder() * 50, 2);
        assert!(d.gap_time(a, near) < d.gap_time(a, far));
        // Worst case bounded by max positioning.
        assert!(d.gap_time(a, far) <= d.max_positioning_time());
    }
}
