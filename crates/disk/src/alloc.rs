//! Block placement policies.
//!
//! The paper contrasts three ways of laying a media strand's blocks on
//! disk (§3):
//!
//! * **random** allocation — what conventional file servers do; block
//!   separations are unconstrained, so continuity can only be bought with
//!   large buffers;
//! * **contiguous** allocation — guarantees continuity but suffers
//!   fragmentation and copying during edits;
//! * **constrained** allocation — the paper's proposal: successive blocks
//!   are *scattered*, with the gap between them bounded within
//!   `[l_lower, l_upper]` so that continuity holds while the gaps remain
//!   usable for other data (e.g. conventional text files).
//!
//! [`Allocator`] implements all three over a shared [`FreeMap`], and
//! [`GapBounds`] converts the model's time bounds into sector bounds via
//! the disk's seek geometry.

use crate::disk::SimDisk;
use crate::freemap::FreeMap;
use crate::geometry::{Extent, Lba};
use std::fmt;
use strandfs_units::{Prng, Seconds};

/// Bounds on the separation between the end of one block of a strand and
/// the start of the next, in sectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GapBounds {
    /// Minimum gap (inclusive), in sectors.
    pub min_sectors: u64,
    /// Maximum gap (inclusive), in sectors.
    pub max_sectors: u64,
}

impl GapBounds {
    /// Bounds with no minimum and the given maximum.
    pub const fn up_to(max_sectors: u64) -> Self {
        GapBounds {
            min_sectors: 0,
            max_sectors,
        }
    }

    /// Derive sector bounds from scattering-time bounds.
    ///
    /// The deterministic gap-time estimate is `seek(cylinder distance) +
    /// half a rotation` (see [`SimDisk::positioning_time`]). The upper
    /// sector bound is the largest cylinder distance whose estimate stays
    /// within `upper`; the lower bound is the smallest distance whose
    /// estimate reaches `lower`. Returns `None` when `upper` cannot
    /// accommodate even a 0-cylinder move (i.e. the scattering bound is
    /// tighter than half a rotation — continuity is infeasible on this
    /// disk) or when the bounds cross.
    pub fn from_times(disk: &SimDisk, lower: Seconds, upper: Seconds) -> Option<Self> {
        let g = disk.geometry();
        let half_rot = g.rotation_time() / 2.0;
        if upper < half_rot {
            return None;
        }
        let seek_budget = upper - half_rot;
        let spc = g.sectors_per_cylinder();
        let max_cyl = disk
            .seek_model()
            .max_distance_within(seek_budget, g.cylinders)
            .unwrap_or(0);
        // Gap of up to (max_cyl) whole cylinders keeps the seek within
        // budget regardless of intra-cylinder offsets.
        let max_sectors = max_cyl.saturating_mul(spc);

        let min_sectors = if lower <= half_rot {
            0
        } else {
            let floor = lower - half_rot;
            match disk.seek_model().min_distance_reaching(floor, g.cylinders) {
                // Need at least (d) full cylinders of separation; +1 so the
                // distance holds from any intra-cylinder offset.
                Some(d) => d.saturating_add(1).saturating_mul(spc),
                None => return None, // lower bound unreachable on this disk
            }
        };
        if min_sectors > max_sectors {
            return None;
        }
        Some(GapBounds {
            min_sectors,
            max_sectors,
        })
    }

    /// True if a gap of `gap` sectors satisfies the bounds.
    #[inline]
    pub const fn admits(self, gap: u64) -> bool {
        gap >= self.min_sectors && gap <= self.max_sectors
    }
}

/// How an [`Allocator`] places successive blocks of a strand.
#[derive(Clone, Debug)]
pub enum AllocPolicy {
    /// Uniformly random placement among free runs (seeded, reproducible).
    Random,
    /// Each block immediately follows its predecessor.
    Contiguous,
    /// Gap between successive blocks constrained to [`GapBounds`].
    /// `allow_wrap` permits one wrap to the start of the disk when the
    /// forward window is exhausted (the wrap transition itself pays a
    /// long seek, recorded as an anomaly).
    Constrained {
        /// The sector-gap bounds to enforce.
        bounds: GapBounds,
        /// Permit wrap-around placement when the forward window is full.
        allow_wrap: bool,
    },
}

/// Why an allocation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// No free run of the requested length anywhere on the device.
    NoSpace,
    /// No free run inside the constrained placement window.
    ConstraintUnsatisfiable {
        /// First admissible start sector that was searched.
        window_start: Lba,
        /// One past the last admissible start sector.
        window_end: Lba,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::NoSpace => write!(f, "no free space for requested extent"),
            AllocError::ConstraintUnsatisfiable {
                window_start,
                window_end,
            } => write!(
                f,
                "no free run in constrained window [{window_start}, {window_end})"
            ),
        }
    }
}

impl std::error::Error for AllocError {}

/// Counters describing an allocator's history.
#[derive(Clone, Copy, Debug, Default)]
pub struct AllocStats {
    /// Successful allocations.
    pub allocations: u64,
    /// Allocations that wrapped around the end of the device.
    pub wraps: u64,
    /// Failed allocations.
    pub failures: u64,
}

/// A block allocator implementing one [`AllocPolicy`] over a [`FreeMap`].
#[derive(Debug)]
pub struct Allocator {
    map: FreeMap,
    policy: AllocPolicy,
    rng: Prng,
    stats: AllocStats,
}

impl Allocator {
    /// An allocator over `total_sectors` fresh sectors.
    pub fn new(total_sectors: u64, policy: AllocPolicy, seed: u64) -> Self {
        Allocator {
            map: FreeMap::new(total_sectors),
            policy,
            rng: Prng::seed_from_u64(seed),
            stats: AllocStats::default(),
        }
    }

    /// The underlying free map (read-only).
    pub fn freemap(&self) -> &FreeMap {
        &self.map
    }

    /// Allocation statistics.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// The active policy.
    pub fn policy(&self) -> &AllocPolicy {
        &self.policy
    }

    /// Place the first block of a strand.
    ///
    /// Every policy starts a strand with a first-fit (random policy: a
    /// uniformly-chosen fit) — constraints only relate *successive*
    /// blocks.
    pub fn allocate_first(&mut self, sectors: u64) -> Result<Extent, AllocError> {
        let e = match self.policy {
            AllocPolicy::Random => self.random_fit(sectors),
            _ => self.first_fit(0, sectors),
        };
        self.commit(e)
    }

    /// Place the next block of a strand whose previous block is `prev`.
    pub fn allocate_after(&mut self, prev: Extent, sectors: u64) -> Result<Extent, AllocError> {
        let e = match self.policy.clone() {
            AllocPolicy::Random => self.random_fit(sectors),
            AllocPolicy::Contiguous => {
                let want = Extent::new(prev.end(), sectors);
                if self.map.extent_free(want) {
                    Some(want)
                } else {
                    None
                }
            }
            AllocPolicy::Constrained { bounds, allow_wrap } => {
                self.constrained_fit(prev, sectors, bounds, allow_wrap)
            }
        };
        self.commit(e)
    }

    /// Place a block anywhere (first-fit) — used for non-real-time infill
    /// data such as conventional text files living in the scattering gaps.
    pub fn allocate_anywhere(&mut self, sectors: u64) -> Result<Extent, AllocError> {
        let e = self.first_fit(0, sectors);
        self.commit(e)
    }

    /// Return an extent to the free pool.
    pub fn release(&mut self, e: Extent) {
        self.map.release(e);
    }

    /// Mark an extent allocated without policy involvement (used when
    /// reconstructing state, e.g. loading an existing volume).
    pub fn adopt(&mut self, e: Extent) {
        self.map.allocate(e);
    }

    fn commit(&mut self, e: Option<Extent>) -> Result<Extent, AllocError> {
        match e {
            Some(e) => {
                self.map.allocate(e);
                self.stats.allocations += 1;
                Ok(e)
            }
            None => {
                self.stats.failures += 1;
                Err(AllocError::NoSpace)
            }
        }
    }

    fn first_fit(&self, from: Lba, sectors: u64) -> Option<Extent> {
        self.map
            .find_free_run(from, self.map.total(), sectors)
            .map(|s| Extent::new(s, sectors))
    }

    fn random_fit(&mut self, sectors: u64) -> Option<Extent> {
        let total = self.map.total();
        if total < sectors || sectors == 0 {
            return None;
        }
        let pivot = self.rng.gen_range(0..total);
        // Search forward from the pivot, then wrap to the front.
        if let Some(s) = self.map.find_free_run(pivot, total, sectors) {
            return Some(Extent::new(s, sectors));
        }
        self.map
            .find_free_run(0, pivot + sectors, sectors)
            .map(|s| Extent::new(s, sectors))
    }

    fn constrained_fit(
        &mut self,
        prev: Extent,
        sectors: u64,
        bounds: GapBounds,
        allow_wrap: bool,
    ) -> Option<Extent> {
        let total = self.map.total();
        let lo = prev.end().saturating_add(bounds.min_sectors);
        let hi = prev
            .end()
            .saturating_add(bounds.max_sectors)
            .saturating_add(1); // window of admissible *starts*, exclusive
        if lo < total {
            if let Some(s) = self.map.find_free_run(lo, hi.min(total), sectors) {
                if s < hi {
                    return Some(Extent::new(s, sectors));
                }
            }
        }
        if allow_wrap {
            // Wrap: restart scattering from the front of the disk. The
            // wrap transition itself exceeds the gap bound (one long
            // seek); it is recorded so experiments can count anomalies.
            let width = (bounds.max_sectors - bounds.min_sectors).saturating_add(1);
            if let Some(s) = self.map.find_free_run(0, width.min(total), sectors) {
                self.stats.wraps += 1;
                return Some(Extent::new(s, sectors));
            }
            // Fall back to anywhere at the front half — still an anomaly.
            if let Some(s) = self.map.find_free_run(0, total, sectors) {
                self.stats.wraps += 1;
                return Some(Extent::new(s, sectors));
            }
        }
        None
    }

    /// Like [`Self::allocate_after`] but reports the constrained window on
    /// failure instead of the generic [`AllocError::NoSpace`].
    pub fn allocate_after_strict(
        &mut self,
        prev: Extent,
        sectors: u64,
    ) -> Result<Extent, AllocError> {
        match self.policy.clone() {
            AllocPolicy::Constrained { bounds, .. } => {
                let found = self.constrained_fit(prev, sectors, bounds, false);
                match found {
                    Some(e) => {
                        self.map.allocate(e);
                        self.stats.allocations += 1;
                        Ok(e)
                    }
                    None => {
                        self.stats.failures += 1;
                        Err(AllocError::ConstraintUnsatisfiable {
                            window_start: prev.end() + bounds.min_sectors,
                            window_end: prev.end() + bounds.max_sectors + 1,
                        })
                    }
                }
            }
            _ => self.allocate_after(prev, sectors),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::DiskGeometry;
    use crate::seek::SeekModel;

    const TOTAL: u64 = 4096;

    fn constrained(min: u64, max: u64) -> Allocator {
        Allocator::new(
            TOTAL,
            AllocPolicy::Constrained {
                bounds: GapBounds {
                    min_sectors: min,
                    max_sectors: max,
                },
                allow_wrap: false,
            },
            7,
        )
    }

    #[test]
    fn contiguous_places_adjacent() {
        let mut a = Allocator::new(TOTAL, AllocPolicy::Contiguous, 0);
        let b0 = a.allocate_first(8).unwrap();
        let b1 = a.allocate_after(b0, 8).unwrap();
        assert_eq!(b1.start, b0.end());
        let b2 = a.allocate_after(b1, 8).unwrap();
        assert_eq!(b2.start, b1.end());
    }

    #[test]
    fn contiguous_fails_when_neighbour_taken() {
        let mut a = Allocator::new(TOTAL, AllocPolicy::Contiguous, 0);
        let b0 = a.allocate_first(8).unwrap();
        a.adopt(Extent::new(b0.end(), 4)); // squatting neighbour
        assert_eq!(a.allocate_after(b0, 8), Err(AllocError::NoSpace));
        assert_eq!(a.stats().failures, 1);
    }

    #[test]
    fn constrained_respects_gap_bounds() {
        let mut a = constrained(16, 64);
        let mut prev = a.allocate_first(8).unwrap();
        for _ in 0..40 {
            let next = a.allocate_after(prev, 8).unwrap();
            let gap = next.start - prev.end();
            assert!((16..=64).contains(&gap), "gap {gap} out of bounds");
            prev = next;
        }
    }

    #[test]
    fn constrained_skips_occupied_window_space() {
        let mut a = constrained(4, 100);
        let b0 = a.allocate_first(8).unwrap();
        // Occupy the first admissible region.
        a.adopt(Extent::new(b0.end() + 4, 20));
        let b1 = a.allocate_after(b0, 8).unwrap();
        let gap = b1.start - b0.end();
        assert!(gap >= 24, "must start after the squatter, got {gap}");
        assert!(gap <= 100);
    }

    #[test]
    fn constrained_fails_without_wrap_at_disk_end() {
        let mut a = constrained(16, 64);
        // Park prev near the end of the device.
        let prev = Extent::new(TOTAL - 8, 8);
        a.adopt(prev);
        assert!(a.allocate_after(prev, 8).is_err());
    }

    #[test]
    fn constrained_wraps_when_allowed() {
        let mut a = Allocator::new(
            TOTAL,
            AllocPolicy::Constrained {
                bounds: GapBounds {
                    min_sectors: 16,
                    max_sectors: 64,
                },
                allow_wrap: true,
            },
            7,
        );
        let prev = Extent::new(TOTAL - 8, 8);
        a.adopt(prev);
        let next = a.allocate_after(prev, 8).unwrap();
        assert!(next.start < 100, "wrapped to the front");
        assert_eq!(a.stats().wraps, 1);
    }

    #[test]
    fn strict_reports_window() {
        let mut a = constrained(16, 64);
        let prev = Extent::new(TOTAL - 8, 8);
        a.adopt(prev);
        match a.allocate_after_strict(prev, 8) {
            Err(AllocError::ConstraintUnsatisfiable {
                window_start,
                window_end,
            }) => {
                assert_eq!(window_start, TOTAL + 16);
                assert_eq!(window_end, TOTAL + 65);
            }
            other => panic!("expected constraint failure, got {other:?}"),
        }
    }

    #[test]
    fn random_is_seeded_and_reproducible() {
        let mut a1 = Allocator::new(TOTAL, AllocPolicy::Random, 42);
        let mut a2 = Allocator::new(TOTAL, AllocPolicy::Random, 42);
        let mut prev1 = a1.allocate_first(8).unwrap();
        let mut prev2 = a2.allocate_first(8).unwrap();
        for _ in 0..20 {
            prev1 = a1.allocate_after(prev1, 8).unwrap();
            prev2 = a2.allocate_after(prev2, 8).unwrap();
            assert_eq!(prev1, prev2);
        }
    }

    #[test]
    fn random_eventually_fills_disk() {
        let mut a = Allocator::new(256, AllocPolicy::Random, 1);
        let mut got = 0;
        while a.allocate_anywhere(8).is_ok() {
            got += 1;
        }
        assert_eq!(got, 32);
        assert_eq!(a.freemap().free(), 0);
    }

    #[test]
    fn infill_uses_gaps_left_by_constrained_strand() {
        let mut a = constrained(32, 64);
        let mut prev = a.allocate_first(8).unwrap();
        for _ in 0..10 {
            prev = a.allocate_after(prev, 8).unwrap();
        }
        // Text-file infill lands inside the first gap.
        let text = a.allocate_anywhere(16).unwrap();
        assert!(text.start >= 8 && text.start < prev.end());
    }

    #[test]
    fn gap_bounds_from_times() {
        let disk = SimDisk::new(DiskGeometry::vintage_1991(), SeekModel::vintage_1991());
        let half_rot = disk.geometry().rotation_time() / 2.0;
        // Upper bound tighter than half a rotation: infeasible.
        assert!(GapBounds::from_times(&disk, Seconds::ZERO, half_rot / 2.0).is_none());
        // A generous upper bound admits a large window.
        let b = GapBounds::from_times(&disk, Seconds::ZERO, Seconds::from_millis(20.0)).unwrap();
        assert_eq!(b.min_sectors, 0);
        assert!(b.max_sectors > 0);
        // Check the promise: any admitted whole-cylinder gap's estimated
        // positioning time respects the upper bound.
        let spc = disk.geometry().sectors_per_cylinder();
        let max_cyl = b.max_sectors / spc;
        assert!(disk.positioning_time(max_cyl) <= Seconds::from_millis(20.0));
    }

    #[test]
    fn gap_bounds_with_lower_floor() {
        let disk = SimDisk::new(DiskGeometry::vintage_1991(), SeekModel::vintage_1991());
        let b = GapBounds::from_times(&disk, Seconds::from_millis(9.0), Seconds::from_millis(25.0))
            .unwrap();
        assert!(b.min_sectors > 0);
        assert!(b.min_sectors <= b.max_sectors);
        // Crossed bounds are rejected.
        assert!(GapBounds::from_times(
            &disk,
            Seconds::from_millis(25.0),
            Seconds::from_millis(9.0)
        )
        .is_none());
    }

    #[test]
    fn admits_checks_range() {
        let b = GapBounds {
            min_sectors: 4,
            max_sectors: 10,
        };
        assert!(!b.admits(3));
        assert!(b.admits(4));
        assert!(b.admits(10));
        assert!(!b.admits(11));
    }
}
