//! Seek-time models.

use strandfs_units::Seconds;

/// A model mapping cylinder distance to arm movement time.
///
/// Two shapes are provided. `Affine` is the textbook linear model; the
/// hybrid square-root model reflects measured drives, where short seeks are
/// dominated by acceleration (∝ √distance) and long seeks by coast time
/// (∝ distance). Both are monotone non-decreasing in distance, which the
/// constrained allocator relies on when it converts scattering bounds
/// expressed in time into bounds expressed in sectors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SeekModel {
    /// `settle + per_cylinder * distance`, zero at distance 0.
    Affine {
        /// Fixed head-settle time paid by any non-zero seek.
        settle: Seconds,
        /// Incremental time per cylinder travelled.
        per_cylinder: Seconds,
    },
    /// `settle + accel * sqrt(d)` for `d < threshold`, then
    /// `settle + accel * sqrt(threshold) + linear * (d - threshold)`.
    HybridSqrt {
        /// Fixed head-settle time paid by any non-zero seek.
        settle: Seconds,
        /// Coefficient of the √distance (acceleration-limited) regime.
        accel: Seconds,
        /// Coefficient of the linear (coast) regime.
        linear: Seconds,
        /// Distance (cylinders) where the regimes meet.
        threshold: u64,
    },
}

impl SeekModel {
    /// A model calibrated to a 1991-class drive: ~4 ms settle, ~17 ms
    /// average seek, ~30 ms full-stroke over ~1400 cylinders.
    pub fn vintage_1991() -> Self {
        SeekModel::HybridSqrt {
            settle: Seconds::from_millis(3.0),
            accel: Seconds::from_millis(0.5),
            linear: Seconds::from_millis(0.012),
            threshold: 400,
        }
    }

    /// The paper's "projected future" drive: seek of the order of 10 ms
    /// full-stroke.
    pub fn projected_fast() -> Self {
        SeekModel::HybridSqrt {
            settle: Seconds::from_millis(1.0),
            accel: Seconds::from_millis(0.15),
            linear: Seconds::from_millis(0.002),
            threshold: 500,
        }
    }

    /// Seek time for a move of `distance` cylinders (0 for no move).
    pub fn seek_time(&self, distance: u64) -> Seconds {
        if distance == 0 {
            return Seconds::ZERO;
        }
        match *self {
            SeekModel::Affine {
                settle,
                per_cylinder,
            } => settle + per_cylinder * distance as f64,
            SeekModel::HybridSqrt {
                settle,
                accel,
                linear,
                threshold,
            } => {
                if distance <= threshold {
                    settle + accel * (distance as f64).sqrt()
                } else {
                    settle
                        + accel * (threshold as f64).sqrt()
                        + linear * (distance - threshold) as f64
                }
            }
        }
    }

    /// Full-stroke seek time for a disk with `cylinders` cylinders —
    /// the paper's `l_seek_max` ingredient.
    pub fn max_seek(&self, cylinders: u64) -> Seconds {
        self.seek_time(cylinders.saturating_sub(1))
    }

    /// The largest cylinder distance achievable on a disk of `cylinders`
    /// whose seek time does not exceed `budget`. `Some(0)` means only a
    /// zero-distance "seek" fits (budget below the smallest real seek, or
    /// a single-cylinder disk where the arm never moves); `None` means
    /// not even that (no cylinders at all, or a negative budget).
    ///
    /// Used to translate a scattering upper bound (seconds) into a
    /// placement upper bound (cylinders). Exploits monotonicity via
    /// binary search.
    pub fn max_distance_within(&self, budget: Seconds, cylinders: u64) -> Option<u64> {
        if cylinders == 0 || budget < Seconds::ZERO {
            return None;
        }
        // On a 1-cylinder disk the largest possible distance is 0, and a
        // budget below the smallest non-zero seek also admits only 0;
        // the earlier `lo = hi = 1` clamp returned the impossible
        // distance 1 here.
        let max_d = cylinders - 1;
        if max_d == 0 || self.seek_time(1) > budget {
            return Some(0);
        }
        if self.seek_time(max_d) <= budget {
            return Some(max_d);
        }
        let (mut lo, mut hi) = (1u64, max_d);
        // Invariant: seek_time(lo) <= budget < seek_time(hi).
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.seek_time(mid) <= budget {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }

    /// The smallest cylinder distance whose seek time is at least `floor`;
    /// `None` if even a full-stroke seek is below it. Distance 0 is
    /// returned when `floor` is zero or negative.
    pub fn min_distance_reaching(&self, floor: Seconds, cylinders: u64) -> Option<u64> {
        if floor.get() <= 0.0 {
            return Some(0);
        }
        let max_d = cylinders.saturating_sub(1);
        if max_d == 0 || self.seek_time(max_d) < floor {
            return None;
        }
        let (mut lo, mut hi) = (0u64, max_d);
        // Invariant: seek_time(lo) < floor <= seek_time(hi).
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if self.seek_time(mid) >= floor {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn affine() -> SeekModel {
        SeekModel::Affine {
            settle: Seconds::from_millis(2.0),
            per_cylinder: Seconds::from_millis(0.01),
        }
    }

    #[test]
    fn zero_distance_is_free() {
        assert_eq!(affine().seek_time(0), Seconds::ZERO);
        assert_eq!(SeekModel::vintage_1991().seek_time(0), Seconds::ZERO);
    }

    #[test]
    fn affine_values() {
        let m = affine();
        assert!((m.seek_time(1).get() - 0.00201).abs() < 1e-9);
        assert!((m.seek_time(100).get() - 0.003).abs() < 1e-9);
    }

    #[test]
    fn monotone_non_decreasing() {
        for m in [
            affine(),
            SeekModel::vintage_1991(),
            SeekModel::projected_fast(),
        ] {
            let mut prev = Seconds::ZERO;
            for d in 0..2_000 {
                let t = m.seek_time(d);
                assert!(t >= prev, "model {m:?} not monotone at {d}");
                prev = t;
            }
        }
    }

    #[test]
    fn vintage_full_stroke_plausible() {
        let m = SeekModel::vintage_1991();
        let full = m.max_seek(1_412).get();
        assert!(full > 0.020 && full < 0.040, "full stroke = {full}");
    }

    #[test]
    fn max_distance_within_inverts_seek_time() {
        let m = SeekModel::vintage_1991();
        let cylinders = 1_412;
        for budget_ms in [4.0, 8.0, 15.0, 25.0] {
            let budget = Seconds::from_millis(budget_ms);
            if let Some(d) = m.max_distance_within(budget, cylinders) {
                assert!(m.seek_time(d) <= budget);
                if d + 1 < cylinders {
                    assert!(m.seek_time(d + 1) > budget);
                }
            }
        }
    }

    #[test]
    fn max_distance_within_edge_cases() {
        let m = affine();
        // Budget below any non-zero seek: only staying put fits.
        assert_eq!(
            m.max_distance_within(Seconds::from_millis(1.0), 100),
            Some(0)
        );
        // Budget above full stroke.
        assert_eq!(m.max_distance_within(Seconds::new(10.0), 100), Some(99));
        assert_eq!(m.max_distance_within(Seconds::new(10.0), 0), None);
        // Negative budget admits nothing.
        assert_eq!(m.max_distance_within(Seconds::new(-1.0), 100), None);
    }

    #[test]
    fn max_distance_within_degenerate_geometries() {
        for m in [
            affine(),
            SeekModel::vintage_1991(),
            SeekModel::projected_fast(),
        ] {
            // A 1-cylinder disk can never move the arm: the inverse must
            // report distance 0, not the old lo=hi=1 collapse.
            assert_eq!(m.max_distance_within(Seconds::new(10.0), 1), Some(0));
            assert_eq!(m.max_distance_within(Seconds::ZERO, 1), Some(0));
            // A 2-cylinder disk caps at distance 1, budget permitting.
            assert_eq!(m.max_distance_within(Seconds::new(10.0), 2), Some(1));
            assert_eq!(m.max_distance_within(Seconds::ZERO, 2), Some(0));
            // max_seek agrees: no movement, no time.
            assert_eq!(m.max_seek(1), Seconds::ZERO);
            assert_eq!(m.max_seek(0), Seconds::ZERO);
        }
    }

    #[test]
    fn min_distance_reaching_degenerate_geometries() {
        let m = affine();
        // Zero floor is reachable without moving even with no cylinders.
        assert_eq!(m.min_distance_reaching(Seconds::ZERO, 1), Some(0));
        // Positive floor is unreachable on a 1-cylinder disk.
        assert_eq!(m.min_distance_reaching(Seconds::from_millis(1.0), 1), None);
        assert_eq!(m.min_distance_reaching(Seconds::from_millis(1.0), 0), None);
    }

    #[test]
    fn min_distance_reaching_inverts_seek_time() {
        let m = SeekModel::vintage_1991();
        let cylinders = 1_412;
        for floor_ms in [1.0, 5.0, 12.0] {
            let floor = Seconds::from_millis(floor_ms);
            if let Some(d) = m.min_distance_reaching(floor, cylinders) {
                assert!(m.seek_time(d) >= floor, "d={d}");
                if d > 0 {
                    assert!(m.seek_time(d - 1) < floor);
                }
            }
        }
    }

    #[test]
    fn min_distance_reaching_edge_cases() {
        let m = affine();
        assert_eq!(m.min_distance_reaching(Seconds::ZERO, 100), Some(0));
        // Floor above full stroke is unreachable.
        assert_eq!(m.min_distance_reaching(Seconds::new(10.0), 100), None);
    }
}
