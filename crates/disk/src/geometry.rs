//! Disk geometry: cylinders, tracks, sectors and address arithmetic.

use strandfs_units::{BitRate, Bytes, Seconds};

/// A logical block address: the index of a sector on a (single) disk,
/// numbered 0.. in cylinder-major order.
pub type Lba = u64;

/// A contiguous run of sectors on one disk.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Extent {
    /// First sector of the run.
    pub start: Lba,
    /// Number of sectors in the run (> 0 for any stored block).
    pub sectors: u64,
}

impl Extent {
    /// Construct an extent.
    #[inline]
    pub const fn new(start: Lba, sectors: u64) -> Self {
        Extent { start, sectors }
    }

    /// One past the last sector of the run.
    #[inline]
    pub const fn end(self) -> Lba {
        self.start + self.sectors
    }

    /// Total bytes covered, given a sector size.
    #[inline]
    pub fn bytes(self, sector_size: Bytes) -> Bytes {
        sector_size * self.sectors
    }

    /// True if the two extents share any sector.
    #[inline]
    pub const fn overlaps(self, other: Extent) -> bool {
        self.start < other.end() && other.start < self.end()
    }

    /// True if `lba` lies inside the run.
    #[inline]
    pub const fn contains(self, lba: Lba) -> bool {
        lba >= self.start && lba < self.end()
    }
}

/// Physical layout of a simulated disk.
///
/// Sectors are numbered in cylinder-major order: all sectors of cylinder 0
/// (across its tracks/surfaces), then cylinder 1, and so on. This matches
/// the classic addressing under which seek distance is monotone in LBA
/// distance — the property the scattering parameter relies on.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskGeometry {
    /// Number of cylinders (seek positions).
    pub cylinders: u64,
    /// Tracks (surfaces) per cylinder.
    pub tracks_per_cylinder: u64,
    /// Sectors per track.
    pub sectors_per_track: u64,
    /// Bytes per sector.
    pub sector_size: Bytes,
    /// Spindle speed in revolutions per minute.
    pub rpm: f64,
    /// Time to switch between heads (surfaces) within a cylinder.
    pub head_switch: Seconds,
}

impl DiskGeometry {
    /// A 1991-vintage 3.5" drive comparable to the paper's PC-AT storage:
    /// ~330 MB, 3600 RPM, 17 ms average seek.
    pub fn vintage_1991() -> Self {
        DiskGeometry {
            cylinders: 1_412,
            tracks_per_cylinder: 8,
            sectors_per_track: 57,
            sector_size: Bytes::new(512),
            rpm: 3_600.0,
            head_switch: Seconds::from_millis(1.0),
        }
    }

    /// A "projected future" drive per the paper's §3 extrapolation:
    /// seek and latency "of the order of 10 ms", used in the 0.32 Gbit/s
    /// worked example.
    pub fn projected_fast() -> Self {
        DiskGeometry {
            cylinders: 2_000,
            tracks_per_cylinder: 16,
            sectors_per_track: 128,
            sector_size: Bytes::new(512),
            rpm: 7_200.0,
            head_switch: Seconds::from_millis(0.5),
        }
    }

    /// A small geometry for tests: fast to scan exhaustively while keeping
    /// non-trivial cylinder structure.
    pub fn tiny_test() -> Self {
        DiskGeometry {
            cylinders: 64,
            tracks_per_cylinder: 2,
            sectors_per_track: 16,
            sector_size: Bytes::new(512),
            rpm: 3_600.0,
            head_switch: Seconds::from_millis(0.5),
        }
    }

    /// Sectors per cylinder.
    #[inline]
    pub const fn sectors_per_cylinder(&self) -> u64 {
        self.tracks_per_cylinder * self.sectors_per_track
    }

    /// Total sectors on the disk.
    #[inline]
    pub const fn total_sectors(&self) -> u64 {
        self.cylinders * self.sectors_per_cylinder()
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity(&self) -> Bytes {
        self.sector_size * self.total_sectors()
    }

    /// Duration of one platter revolution.
    #[inline]
    pub fn rotation_time(&self) -> Seconds {
        Seconds::new(60.0 / self.rpm)
    }

    /// Time for one sector to pass under the head.
    #[inline]
    pub fn sector_time(&self) -> Seconds {
        self.rotation_time() / self.sectors_per_track as f64
    }

    /// Sustained media transfer rate of one track (one head).
    #[inline]
    pub fn track_transfer_rate(&self) -> BitRate {
        let bits_per_track = self.sector_size.to_bits() * self.sectors_per_track;
        BitRate::bits_per_sec(bits_per_track.as_f64() / self.rotation_time().get())
    }

    /// The cylinder containing `lba`.
    #[inline]
    pub const fn cylinder_of(&self, lba: Lba) -> u64 {
        lba / self.sectors_per_cylinder()
    }

    /// The track (surface index within its cylinder) containing `lba`.
    #[inline]
    pub const fn track_of(&self, lba: Lba) -> u64 {
        (lba % self.sectors_per_cylinder()) / self.sectors_per_track
    }

    /// The sector index within its track.
    #[inline]
    pub const fn sector_of(&self, lba: Lba) -> u64 {
        lba % self.sectors_per_track
    }

    /// Absolute cylinder distance between two LBAs.
    #[inline]
    pub const fn cylinder_distance(&self, a: Lba, b: Lba) -> u64 {
        let ca = self.cylinder_of(a);
        let cb = self.cylinder_of(b);
        ca.abs_diff(cb)
    }

    /// True if `e` lies entirely on the disk.
    #[inline]
    pub const fn extent_valid(&self, e: Extent) -> bool {
        e.sectors > 0 && e.end() <= self.total_sectors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_basics() {
        let e = Extent::new(10, 5);
        assert_eq!(e.end(), 15);
        assert!(e.contains(10));
        assert!(e.contains(14));
        assert!(!e.contains(15));
        assert_eq!(e.bytes(Bytes::new(512)), Bytes::new(2560));
    }

    #[test]
    fn extent_overlap() {
        let a = Extent::new(10, 5);
        assert!(a.overlaps(Extent::new(14, 1)));
        assert!(a.overlaps(Extent::new(8, 3)));
        assert!(!a.overlaps(Extent::new(15, 3)));
        assert!(!a.overlaps(Extent::new(5, 5)));
        assert!(a.overlaps(a));
    }

    #[test]
    fn geometry_address_arithmetic() {
        let g = DiskGeometry::tiny_test();
        assert_eq!(g.sectors_per_cylinder(), 32);
        assert_eq!(g.total_sectors(), 64 * 32);
        // LBA 33 = cylinder 1, track 0, sector 1.
        assert_eq!(g.cylinder_of(33), 1);
        assert_eq!(g.track_of(33), 0);
        assert_eq!(g.sector_of(33), 1);
        // LBA 48 = cylinder 1, track 1, sector 0.
        assert_eq!(g.cylinder_of(48), 1);
        assert_eq!(g.track_of(48), 1);
        assert_eq!(g.sector_of(48), 0);
        assert_eq!(g.cylinder_distance(0, 33), 1);
        assert_eq!(g.cylinder_distance(33, 0), 1);
    }

    #[test]
    fn geometry_timing() {
        let g = DiskGeometry::tiny_test();
        // 3600 RPM = 60 rev/s -> 16.67 ms per revolution.
        assert!((g.rotation_time().get() - 1.0 / 60.0).abs() < 1e-12);
        assert!((g.sector_time().get() - 1.0 / 60.0 / 16.0).abs() < 1e-12);
        // One track = 16 * 512 * 8 bits in one rotation.
        let rate = g.track_transfer_rate();
        assert!((rate.get() - 16.0 * 512.0 * 8.0 * 60.0).abs() < 1e-6);
    }

    #[test]
    fn vintage_capacity_plausible() {
        let g = DiskGeometry::vintage_1991();
        let cap = g.capacity().get();
        // ~330 MB class drive.
        assert!(cap > 300_000_000 && cap < 360_000_000, "cap = {cap}");
    }

    #[test]
    fn extent_validity() {
        let g = DiskGeometry::tiny_test();
        assert!(g.extent_valid(Extent::new(0, 1)));
        assert!(g.extent_valid(Extent::new(g.total_sectors() - 1, 1)));
        assert!(!g.extent_valid(Extent::new(g.total_sectors(), 1)));
        assert!(!g.extent_valid(Extent::new(0, 0)));
        assert!(!g.extent_valid(Extent::new(g.total_sectors() - 1, 2)));
    }
}
