//! Fault injection: a deterministic, seeded fault layer between the
//! storage manager and the simulated disk.
//!
//! The continuity analysis (Eqs. 1–3, 15–18) assumes every block access
//! completes in nominal `seek + rotation + transfer` time. Real media
//! servers lose sectors, suffer latency spikes and see transient read
//! errors; a robust design degrades gracefully instead of panicking.
//! This module provides the substrate for exercising that behaviour:
//!
//! * [`BlockDevice`] — the small device trait the storage manager
//!   programs against, with [`SimDisk`] as the faultless base
//!   implementation;
//! * [`FaultPlan`] — a declarative description of what should go wrong:
//!   permanently bad extents, transient read errors that succeed after a
//!   fixed number of retries, a seeded random transient-error rate,
//!   latency spikes drawn from the vendored PRNG, and region-wide
//!   degraded-transfer windows;
//! * [`FaultInjector`] — a wrapper that executes a plan on top of a
//!   `SimDisk`. It is deterministic under a fixed seed: the same plan,
//!   seed and access sequence produce byte-identical timing, statistics
//!   and observability event streams.
//!
//! Failed attempts still cost time — the arm moved and the platter spun
//! before the error was detected — so a fault returns the full
//! [`DiskOp`] timing of the wasted attempt. Callers decide whether the
//! continuity budget allows a retry (see the MSM's resilient read path).

use crate::disk::{AccessKind, DiskOp, SimDisk};
use crate::geometry::{DiskGeometry, Extent, Lba};
use crate::seek::SeekModel;
use crate::trace::DiskStats;
use std::collections::HashMap;
use strandfs_obs::{AccessDir, Event, FaultClass, ObsSink};
use strandfs_units::prng::mix_seed;
use strandfs_units::{Instant, Nanos, Prng, Seconds};

/// Domain-separation stream for the injector's PRNG.
const FAULT_STREAM: u64 = 0xFA17;

/// Why a device access failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Permanent media error: every attempt on these sectors fails.
    Media,
    /// Transient error: a later retry may succeed.
    Transient,
    /// Torn write: only a prefix of the written sectors persisted.
    Torn,
    /// The device hit its crash point (or was already crashed): the
    /// image is frozen and every access fails until a power cycle.
    Crashed,
}

/// A failed access. The attempt consumed real service time — the head
/// moved and the platter spun before the failure was detected — so the
/// wasted [`DiskOp`] timing is carried along; `op.completed` is the
/// instant the failure was detected.
#[derive(Clone, Copy, Debug)]
pub struct Faulted {
    /// Permanent or transient.
    pub kind: FaultKind,
    /// Timing of the failed attempt.
    pub op: DiskOp,
}

/// Outcome of one timed access through a [`BlockDevice`].
pub type AccessResult = Result<DiskOp, Faulted>;

/// A transient read error pinned to an extent: reads overlapping
/// `extent` fail `failures` times, then succeed — the classic
/// success-after-N-retries pattern.
#[derive(Clone, Copy, Debug)]
pub struct TransientFault {
    /// Sectors affected.
    pub extent: Extent,
    /// Failures before the first success.
    pub failures: u32,
}

/// A seeded random transient-error process for fault-rate sweeps: each
/// read fails with probability `per_read`; a failing extent draws a
/// burst length in `1..=max_failures` and recovers after that many
/// failed attempts.
#[derive(Clone, Copy, Debug)]
pub struct RandomTransients {
    /// Probability that a (previously healthy) read faults.
    pub per_read: f64,
    /// Upper bound on consecutive failures per faulting extent.
    pub max_failures: u32,
}

/// Seeded latency spikes: with probability `per_op` an operation pays
/// extra positioning time drawn uniformly from `1..=max_extra` ns
/// (thermal recalibration, servo retries).
#[derive(Clone, Copy, Debug)]
pub struct SpikeCfg {
    /// Probability that an operation spikes.
    pub per_op: f64,
    /// Largest extra latency a spike can add.
    pub max_extra: Nanos,
}

/// A deterministic crash point: when it fires, the in-flight write is
/// torn (a seeded prefix of its sectors persists) and the device
/// freezes into its post-crash image — every later access fails with
/// [`FaultKind::Crashed`] and stores are dropped, until
/// [`BlockDevice::power_cycle`] clears the freeze. Same plan + seed +
/// access sequence ⇒ byte-identical post-crash image.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrashPoint {
    /// Crash on device write number `n` (0-based): the first `n` writes
    /// complete normally, the next one tears and freezes the device.
    AfterWrites(u64),
    /// Crash on the first write issued at or after this virtual instant.
    AtInstant(Instant),
}

/// A degraded-transfer window: operations issued in `[from, until)`
/// (and overlapping `region`, when one is given) have their media
/// transfer stretched by `slowdown` (≥ 1.0) — a region of the drive
/// limping along at reduced rate.
#[derive(Clone, Copy, Debug)]
pub struct DegradedWindow {
    /// Window start (inclusive).
    pub from: Instant,
    /// Window end (exclusive).
    pub until: Instant,
    /// Affected sectors; `None` degrades the whole device.
    pub region: Option<Extent>,
    /// Transfer-time multiplier (values below 1.0 are treated as 1.0).
    pub slowdown: f64,
}

/// Silent corruption: at arm time, one seeded bit of each listed
/// extent's stored payload is flipped *in place*. The device itself
/// never notices — reads succeed with nominal timing and return the
/// rotten bytes — so only an end-to-end payload checksum can catch it.
/// This models bit rot and misdirected writes, the failure class that
/// hard `MediaError`s do not cover.
#[derive(Clone, Copy, Debug)]
pub struct SilentCorruption {
    /// The extent whose stored payload is damaged.
    pub extent: Extent,
}

/// A declarative fault plan. An empty plan injects nothing.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Permanently unreadable extents.
    pub bad: Vec<Extent>,
    /// Pinned success-after-N transient faults.
    pub transients: Vec<TransientFault>,
    /// Random transient-error process (fault-rate sweeps).
    pub random_transients: Option<RandomTransients>,
    /// Latency-spike process.
    pub spikes: Option<SpikeCfg>,
    /// Degraded-transfer windows.
    pub degraded: Vec<DegradedWindow>,
    /// Torn-write regions: every overlapping write persists only a
    /// seeded prefix of its sectors and fails with [`FaultKind::Torn`].
    pub torn: Vec<Extent>,
    /// Pinned success-after-N write transients: overlapping writes fail
    /// `failures` times (persisting nothing), then succeed.
    pub write_transients: Vec<TransientFault>,
    /// The crash point, if any.
    pub crash: Option<CrashPoint>,
    /// Silently-corrupted extents: one seeded bit flipped in each at
    /// arm time, invisible to the device ([`SilentCorruption`]).
    pub corrupt: Vec<SilentCorruption>,
    /// Fail-slow multiplier: every operation's service time is
    /// stretched by this factor *without ever erroring* — a gray member
    /// that is slow, not dead. Values at or below 1.0 are off.
    pub fail_slow: f64,
}

impl FaultPlan {
    /// The empty plan: a faultless device.
    pub fn clean() -> FaultPlan {
        FaultPlan::default()
    }

    /// True if the plan injects nothing at all.
    pub fn is_clean(&self) -> bool {
        self.bad.is_empty()
            && self.transients.is_empty()
            && self.random_transients.is_none()
            && self.spikes.is_none()
            && self.degraded.is_empty()
            && self.torn.is_empty()
            && self.write_transients.is_empty()
            && self.crash.is_none()
            && self.corrupt.is_empty()
            && self.fail_slow <= 1.0
    }

    /// Add a permanently bad extent.
    pub fn with_bad_extent(mut self, extent: Extent) -> Self {
        self.bad.push(extent);
        self
    }

    /// Add a pinned transient fault (fails `failures` times, then reads).
    pub fn with_transient(mut self, extent: Extent, failures: u32) -> Self {
        self.transients.push(TransientFault { extent, failures });
        self
    }

    /// Enable the random transient-error process.
    pub fn with_random_transients(mut self, per_read: f64, max_failures: u32) -> Self {
        self.random_transients = Some(RandomTransients {
            per_read,
            max_failures: max_failures.max(1),
        });
        self
    }

    /// Enable latency spikes.
    pub fn with_spikes(mut self, per_op: f64, max_extra: Nanos) -> Self {
        self.spikes = Some(SpikeCfg { per_op, max_extra });
        self
    }

    /// Add a degraded-transfer window.
    pub fn with_degraded_window(mut self, window: DegradedWindow) -> Self {
        self.degraded.push(window);
        self
    }

    /// Add a torn-write region (writes persist a seeded sector prefix).
    pub fn with_torn_extent(mut self, extent: Extent) -> Self {
        self.torn.push(extent);
        self
    }

    /// Add a pinned write transient (fails `failures` times persisting
    /// nothing, then writes succeed).
    pub fn with_write_transient(mut self, extent: Extent, failures: u32) -> Self {
        self.write_transients
            .push(TransientFault { extent, failures });
        self
    }

    /// Set the crash point.
    pub fn with_crash_point(mut self, crash: CrashPoint) -> Self {
        self.crash = Some(crash);
        self
    }

    /// Silently corrupt one seeded bit of `extent`'s stored payload at
    /// arm time (invisible to the device — only a checksum catches it).
    pub fn with_silent_corruption(mut self, extent: Extent) -> Self {
        self.corrupt.push(SilentCorruption { extent });
        self
    }

    /// Make the whole device fail-slow: every operation takes `factor`×
    /// its nominal service time, without ever erroring.
    pub fn with_fail_slow(mut self, factor: f64) -> Self {
        self.fail_slow = factor;
        self
    }
}

/// Cumulative fault counters kept by a [`FaultInjector`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Reads refused with a permanent media error.
    pub media_errors: u64,
    /// Accesses refused with a transient error (reads and writes).
    pub transient_errors: u64,
    /// Writes torn to a sector prefix.
    pub torn_writes: u64,
    /// Accesses refused because the device is crashed (the crash-point
    /// write itself included).
    pub crashed_ops: u64,
    /// Operations that paid a latency spike.
    pub spikes: u64,
    /// Operations slowed by a degraded-transfer window.
    pub degraded_ops: u64,
    /// Stored extents silently corrupted at arm time.
    pub corrupted: u64,
    /// Operations stretched by the fail-slow multiplier.
    pub fail_slow_ops: u64,
    /// Total service time charged to faults: wasted failed attempts plus
    /// extra latency from spikes and degraded transfers.
    pub penalty: Nanos,
}

/// The device abstraction the storage manager programs against.
///
/// [`SimDisk`] is the faultless base implementation (its `access` never
/// fails); [`FaultInjector`] wraps one and executes a [`FaultPlan`].
/// Timing-estimate helpers (`positioning_time`, `gap_time`, …) stay on
/// the trait because allocators and the analytic model consult them
/// through the same handle as the data path.
pub trait BlockDevice {
    /// The device's geometry.
    fn geometry(&self) -> &DiskGeometry;
    /// The device's seek-time model.
    fn seek_model(&self) -> &SeekModel;
    /// The cylinder the arm currently rests on.
    fn head_cylinder(&self) -> u64;
    /// Cumulative operation statistics (faulted attempts included).
    fn stats(&self) -> &DiskStats;
    /// Route the device's observability events into `obs`.
    fn set_obs(&mut self, obs: ObsSink);
    /// Worst-case positioning time (the paper's `l_seek_max`).
    fn max_positioning_time(&self) -> Seconds;
    /// Expected positioning time for a move of `cylinder_distance`.
    fn positioning_time(&self, cylinder_distance: u64) -> Seconds;
    /// Expected gap time between two extents.
    fn gap_time(&self, from: Extent, to: Extent) -> Seconds;
    /// Perform a timed access; a fault carries the wasted attempt's
    /// timing. Panics if the extent is off-device (a file-system bug,
    /// not an I/O error — validate with [`DiskGeometry::extent_valid`]).
    fn access(&mut self, now: Instant, extent: Extent, kind: AccessKind) -> AccessResult;
    /// Write `data` into `extent` (length must match the extent).
    fn store_data(&mut self, extent: Extent, data: &[u8]);
    /// Read the payload of `extent`; `None` if the extent is off-device.
    /// Unwritten sectors read back zeroed.
    fn try_fetch(&self, extent: Extent) -> Option<Vec<u8>>;
    /// FNV-1a sum of the payload of `extent` ([`crate::fnv1a`] of
    /// [`BlockDevice::try_fetch`]), or `None` off-device — the cheap
    /// primitive behind verified reads and scrubbing. Implementations
    /// should hash in place rather than copy.
    fn fetch_sum(&self, extent: Extent) -> Option<u64> {
        self.try_fetch(extent).map(|d| crate::fnv1a(&d))
    }
    /// Drop the payload of `extent` (timing-neutral discard).
    fn discard_data(&mut self, extent: Extent);
    /// Number of sectors currently holding written payloads.
    fn sectors_written(&self) -> usize;
    /// Install (or replace) a fault plan, resetting all fault state and
    /// the injector's PRNG. Returns `false` on devices that cannot
    /// inject faults (the plan is ignored).
    fn arm_faults(&mut self, plan: FaultPlan) -> bool {
        let _ = plan;
        false
    }
    /// Cumulative fault counters (all-zero for faultless devices).
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }
    /// Known-bad extents — first-class metadata for fsck, not a panic.
    fn bad_extents(&self) -> &[Extent] {
        &[]
    }
    /// Clear a crash-point freeze so the post-crash image can be
    /// remounted: the device accepts operations again and the spent
    /// crash point is disarmed (other fault state is retained). Returns
    /// `false` on devices that cannot crash (nothing to clear).
    fn power_cycle(&mut self) -> bool {
        false
    }
    /// Stable FNV-1a fingerprint of the written device image, for
    /// byte-identity assertions across crash replays.
    fn content_hash(&self) -> u64;
}

impl BlockDevice for SimDisk {
    fn geometry(&self) -> &DiskGeometry {
        SimDisk::geometry(self)
    }
    fn seek_model(&self) -> &SeekModel {
        SimDisk::seek_model(self)
    }
    fn head_cylinder(&self) -> u64 {
        SimDisk::head_cylinder(self)
    }
    fn stats(&self) -> &DiskStats {
        SimDisk::stats(self)
    }
    fn set_obs(&mut self, obs: ObsSink) {
        SimDisk::set_obs(self, obs)
    }
    fn max_positioning_time(&self) -> Seconds {
        SimDisk::max_positioning_time(self)
    }
    fn positioning_time(&self, cylinder_distance: u64) -> Seconds {
        SimDisk::positioning_time(self, cylinder_distance)
    }
    fn gap_time(&self, from: Extent, to: Extent) -> Seconds {
        SimDisk::gap_time(self, from, to)
    }
    fn access(&mut self, now: Instant, extent: Extent, kind: AccessKind) -> AccessResult {
        Ok(SimDisk::access(self, now, extent, kind))
    }
    fn store_data(&mut self, extent: Extent, data: &[u8]) {
        SimDisk::store_data(self, extent, data)
    }
    fn try_fetch(&self, extent: Extent) -> Option<Vec<u8>> {
        SimDisk::try_fetch(self, extent)
    }
    fn fetch_sum(&self, extent: Extent) -> Option<u64> {
        SimDisk::fetch_sum(self, extent)
    }
    fn discard_data(&mut self, extent: Extent) {
        SimDisk::discard_data(self, extent)
    }
    fn sectors_written(&self) -> usize {
        SimDisk::sectors_written(self)
    }
    fn content_hash(&self) -> u64 {
        SimDisk::content_hash(self)
    }
}

/// A seeded fault injector wrapping a [`SimDisk`].
///
/// The inner disk keeps modelling mechanics (head position, platter
/// angle, boundary crossings); the injector post-processes each
/// operation according to its [`FaultPlan`] — stretching transfers in
/// degraded windows, adding PRNG latency spikes, and converting reads
/// of bad or transiently-failing extents into [`Faulted`] outcomes.
/// All observability events ([`Event::DiskOp`] with the *adjusted*
/// timing, plus one [`Event::Fault`] per fault) are emitted by the
/// injector; the inner disk's sink stays disabled so the stream is
/// consistent.
#[derive(Debug)]
pub struct FaultInjector {
    inner: SimDisk,
    plan: FaultPlan,
    seed: u64,
    prng: Prng,
    /// Remaining failures per pinned transient (parallel to
    /// `plan.transients`).
    transient_remaining: Vec<u32>,
    /// Remaining failures per pinned write transient (parallel to
    /// `plan.write_transients`).
    write_transient_remaining: Vec<u32>,
    /// Remaining failures per currently-faulting extent of the random
    /// transient process, keyed by extent start.
    random_remaining: HashMap<Lba, u32>,
    /// Device writes attempted while healthy (drives `AfterWrites`).
    writes_done: u64,
    /// True once the crash point fired: the image is frozen.
    crashed: bool,
    stats: DiskStats,
    fstats: FaultStats,
    obs: ObsSink,
}

impl FaultInjector {
    /// Wrap `disk`, executing `plan` with the given seed.
    pub fn new(disk: SimDisk, plan: FaultPlan, seed: u64) -> FaultInjector {
        let mut injector = FaultInjector {
            inner: disk,
            plan: FaultPlan::clean(),
            seed,
            prng: Prng::seed_from_u64(mix_seed(seed, FAULT_STREAM)),
            transient_remaining: Vec::new(),
            write_transient_remaining: Vec::new(),
            random_remaining: HashMap::new(),
            writes_done: 0,
            crashed: false,
            stats: DiskStats::default(),
            fstats: FaultStats::default(),
            obs: ObsSink::noop(),
        };
        injector.install(plan);
        injector
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The wrapped disk.
    pub fn inner(&self) -> &SimDisk {
        &self.inner
    }

    fn install(&mut self, plan: FaultPlan) {
        self.transient_remaining = plan.transients.iter().map(|t| t.failures).collect();
        self.write_transient_remaining = plan.write_transients.iter().map(|t| t.failures).collect();
        self.random_remaining.clear();
        self.writes_done = 0;
        self.crashed = false;
        self.prng = Prng::seed_from_u64(mix_seed(self.seed, FAULT_STREAM));
        self.plan = plan;
        // Silent corruption happens at arm time: rot the stored image
        // in place, before the op-level PRNG stream starts, so the same
        // plan + seed rots the same bits. The device keeps serving the
        // extent with nominal timing — only a checksum can tell.
        for c in self.plan.corrupt.clone() {
            let Some(mut data) = self.inner.try_fetch(c.extent) else {
                continue;
            };
            if data.is_empty() {
                continue;
            }
            let bit = self.prng.bounded_u64(data.len() as u64 * 8);
            data[(bit / 8) as usize] ^= 1 << (bit % 8);
            self.inner.store_data(c.extent, &data);
            self.fstats.corrupted += 1;
        }
    }

    /// True once the crash point fired and no power cycle has cleared it.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Device writes attempted so far (healthy writes only): the index
    /// space a crash-point sweep enumerates with `AfterWrites`.
    pub fn writes_done(&self) -> u64 {
        self.writes_done
    }

    /// Extra transfer time charged by degraded windows covering this op.
    fn degraded_extra(&self, issued: Instant, extent: Extent, transfer: Nanos) -> Nanos {
        let mut extra = Nanos::ZERO;
        for w in &self.plan.degraded {
            let in_window = issued >= w.from && issued < w.until;
            let in_region = w.region.is_none_or(|r| r.overlaps(extent));
            if in_window && in_region && w.slowdown > 1.0 {
                let stretched = transfer.as_nanos() as f64 * (w.slowdown - 1.0);
                extra += Nanos::from_nanos(stretched as u64);
            }
        }
        extra
    }

    /// Decide whether this read fails, consuming fault state. Draws from
    /// the PRNG happen in a fixed order so the stream is reproducible.
    fn read_fault(&mut self, extent: Extent) -> Option<FaultKind> {
        if self.plan.bad.iter().any(|b| b.overlaps(extent)) {
            return Some(FaultKind::Media);
        }
        for (i, t) in self.plan.transients.iter().enumerate() {
            if t.extent.overlaps(extent) {
                if self.transient_remaining[i] > 0 {
                    self.transient_remaining[i] -= 1;
                    return Some(FaultKind::Transient);
                }
                return None;
            }
        }
        if let Some(cfg) = self.plan.random_transients {
            if let Some(rem) = self.random_remaining.get_mut(&extent.start) {
                if *rem > 0 {
                    *rem -= 1;
                    return Some(FaultKind::Transient);
                }
                self.random_remaining.remove(&extent.start);
                return None;
            }
            if cfg.per_read > 0.0 && self.prng.gen_bool(cfg.per_read.min(1.0)) {
                // Burst of 1..=max_failures failures; this attempt
                // consumes the first.
                let burst = 1 + self.prng.bounded_u64(cfg.max_failures.max(1) as u64) as u32;
                self.random_remaining.insert(extent.start, burst - 1);
                return Some(FaultKind::Transient);
            }
        }
        None
    }

    /// Tear a write: keep a seeded prefix of the extent's sectors on the
    /// medium, drop the rest. The payload was already stored (the MSM
    /// stores before it times the write), so tearing is a partial
    /// discard of what just landed.
    fn tear(&mut self, extent: Extent) {
        let kept = self.prng.bounded_u64(extent.sectors);
        if kept < extent.sectors {
            self.inner
                .discard_data(Extent::new(extent.start + kept, extent.sectors - kept));
        }
    }

    /// Decide whether this write fails, consuming fault state and
    /// mutating the stored image (torn prefix / dropped payload) so the
    /// on-medium bytes match the failure the caller observes.
    fn write_fault(&mut self, extent: Extent, issued: Instant) -> Option<FaultKind> {
        let crash_now = match self.plan.crash {
            Some(CrashPoint::AfterWrites(n)) => self.writes_done >= n,
            Some(CrashPoint::AtInstant(t)) => issued >= t,
            None => false,
        };
        if crash_now {
            self.tear(extent);
            self.crashed = true;
            return Some(FaultKind::Crashed);
        }
        if self.plan.torn.iter().any(|t| t.overlaps(extent)) {
            self.tear(extent);
            return Some(FaultKind::Torn);
        }
        for (i, t) in self.plan.write_transients.iter().enumerate() {
            if t.extent.overlaps(extent) {
                if self.write_transient_remaining[i] > 0 {
                    self.write_transient_remaining[i] -= 1;
                    // A failed write attempt persists nothing.
                    self.inner.discard_data(extent);
                    return Some(FaultKind::Transient);
                }
                return None;
            }
        }
        None
    }

    fn emit_op(&self, op: &DiskOp, cylinder: u64, cyl_distance: u64) {
        self.obs.emit(|| Event::DiskOp {
            dir: match op.kind {
                AccessKind::Read => strandfs_obs::AccessDir::Read,
                AccessKind::Write => strandfs_obs::AccessDir::Write,
            },
            lba: op.extent.start,
            sectors: op.extent.sectors,
            cylinder,
            cyl_distance,
            issued: op.issued,
            seek: op.seek,
            rotation: op.rotation,
            transfer: op.transfer,
        });
    }
}

impl BlockDevice for FaultInjector {
    fn geometry(&self) -> &DiskGeometry {
        self.inner.geometry()
    }
    fn seek_model(&self) -> &SeekModel {
        self.inner.seek_model()
    }
    fn head_cylinder(&self) -> u64 {
        self.inner.head_cylinder()
    }
    fn stats(&self) -> &DiskStats {
        &self.stats
    }
    fn set_obs(&mut self, obs: ObsSink) {
        // The injector is the single event source; the inner disk's sink
        // stays disabled so adjusted timing is reported exactly once.
        self.obs = obs;
    }
    fn max_positioning_time(&self) -> Seconds {
        self.inner.max_positioning_time()
    }
    fn positioning_time(&self, cylinder_distance: u64) -> Seconds {
        self.inner.positioning_time(cylinder_distance)
    }
    fn gap_time(&self, from: Extent, to: Extent) -> Seconds {
        self.inner.gap_time(from, to)
    }

    fn access(&mut self, now: Instant, extent: Extent, kind: AccessKind) -> AccessResult {
        let cyl_before = self.inner.head_cylinder();
        let target_cyl = self.inner.geometry().cylinder_of(extent.start);
        let cyl_distance = target_cyl.abs_diff(cyl_before);
        let mut op = SimDisk::access(&mut self.inner, now, extent, kind);

        // Degraded-transfer windows stretch the media transfer.
        let degraded = self.degraded_extra(op.issued, extent, op.transfer);
        if degraded > Nanos::ZERO {
            op.transfer += degraded;
            self.fstats.degraded_ops += 1;
            self.fstats.penalty += degraded;
        }
        // Latency spikes charge extra positioning (servo retry /
        // recalibration), drawn from the seeded PRNG.
        let mut spike = Nanos::ZERO;
        if let Some(cfg) = self.plan.spikes {
            if cfg.per_op > 0.0 && self.prng.gen_bool(cfg.per_op.min(1.0)) {
                spike =
                    Nanos::from_nanos(1 + self.prng.bounded_u64(cfg.max_extra.as_nanos().max(1)));
                op.seek += spike;
                self.fstats.spikes += 1;
                self.fstats.penalty += spike;
            }
        }
        // Fail-slow: the gray member stretches *every* op's service
        // time by the plan's factor, silently — no fault event, no
        // error, nothing a health check keyed on errors would see.
        if self.plan.fail_slow > 1.0 {
            let nominal = (op.seek + op.rotation + op.transfer).as_nanos() as f64;
            let extra = Nanos::from_nanos((nominal * (self.plan.fail_slow - 1.0)) as u64);
            if extra > Nanos::ZERO {
                op.transfer += extra;
                self.fstats.fail_slow_ops += 1;
                self.fstats.penalty += extra;
            }
        }
        op.completed = op.issued + op.seek + op.rotation + op.transfer;

        let dir = match kind {
            AccessKind::Read => AccessDir::Read,
            AccessKind::Write => AccessDir::Write,
        };
        let fault = if self.crashed {
            // Frozen image: every access fails, nothing persists (the
            // matching `store_data` was already dropped).
            Some(FaultKind::Crashed)
        } else {
            match kind {
                AccessKind::Read => self.read_fault(extent),
                AccessKind::Write => {
                    let f = self.write_fault(extent, op.issued);
                    self.writes_done += 1;
                    f
                }
            }
        };

        self.stats.record(&op);
        self.emit_op(&op, target_cyl, cyl_distance);
        if degraded > Nanos::ZERO {
            self.obs.emit(|| Event::Fault {
                class: FaultClass::Degraded,
                dir,
                lba: extent.start,
                sectors: extent.sectors,
                issued: op.issued,
                detected: op.completed,
                penalty: degraded,
            });
        }
        if spike > Nanos::ZERO {
            self.obs.emit(|| Event::Fault {
                class: FaultClass::Spike,
                dir,
                lba: extent.start,
                sectors: extent.sectors,
                issued: op.issued,
                detected: op.completed,
                penalty: spike,
            });
        }

        match fault {
            None => Ok(op),
            Some(fkind) => {
                let class = match fkind {
                    FaultKind::Media => {
                        self.fstats.media_errors += 1;
                        FaultClass::Media
                    }
                    FaultKind::Transient => {
                        self.fstats.transient_errors += 1;
                        FaultClass::Transient
                    }
                    FaultKind::Torn => {
                        self.fstats.torn_writes += 1;
                        FaultClass::Torn
                    }
                    FaultKind::Crashed => {
                        self.fstats.crashed_ops += 1;
                        FaultClass::Crashed
                    }
                };
                // A failed attempt — read or write — still cost the
                // arm movement and rotation before it was detected.
                self.fstats.penalty += op.service_time();
                self.obs.emit(|| Event::Fault {
                    class,
                    dir,
                    lba: extent.start,
                    sectors: extent.sectors,
                    issued: op.issued,
                    detected: op.completed,
                    penalty: op.service_time(),
                });
                Err(Faulted { kind: fkind, op })
            }
        }
    }

    fn store_data(&mut self, extent: Extent, data: &[u8]) {
        // A crashed device drops stores on the floor: the image froze
        // at the crash point.
        if self.crashed {
            return;
        }
        self.inner.store_data(extent, data)
    }
    fn try_fetch(&self, extent: Extent) -> Option<Vec<u8>> {
        self.inner.try_fetch(extent)
    }
    fn fetch_sum(&self, extent: Extent) -> Option<u64> {
        self.inner.fetch_sum(extent)
    }
    fn discard_data(&mut self, extent: Extent) {
        if self.crashed {
            return;
        }
        self.inner.discard_data(extent)
    }
    fn sectors_written(&self) -> usize {
        self.inner.sectors_written()
    }
    fn arm_faults(&mut self, plan: FaultPlan) -> bool {
        self.install(plan);
        true
    }
    fn fault_stats(&self) -> FaultStats {
        self.fstats
    }
    fn bad_extents(&self) -> &[Extent] {
        &self.plan.bad
    }
    fn power_cycle(&mut self) -> bool {
        self.crashed = false;
        self.plan.crash = None;
        true
    }
    fn content_hash(&self) -> u64 {
        self.inner.content_hash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seek::SeekModel;

    fn base_disk() -> SimDisk {
        SimDisk::new(DiskGeometry::tiny_test(), SeekModel::vintage_1991())
    }

    fn read(d: &mut dyn BlockDevice, t: Instant, e: Extent) -> AccessResult {
        d.access(t, e, AccessKind::Read)
    }

    #[test]
    fn clean_plan_matches_bare_disk_exactly() {
        let mut bare = base_disk();
        let mut inj = FaultInjector::new(base_disk(), FaultPlan::clean(), 7);
        let mut t = Instant::EPOCH;
        for i in 0..20u64 {
            let e = Extent::new((i * 37) % 2000, 4);
            let a = SimDisk::access(&mut bare, t, e, AccessKind::Read);
            let b = read(&mut inj, t, e).expect("clean plan never faults");
            assert_eq!(a.completed, b.completed);
            assert_eq!(
                (a.seek, a.rotation, a.transfer),
                (b.seek, b.rotation, b.transfer)
            );
            t = a.completed;
        }
        assert_eq!(inj.fault_stats(), FaultStats::default());
        assert_eq!(inj.stats().busy_time(), bare.stats().busy_time());
    }

    #[test]
    fn bad_extent_always_fails_reads_but_not_writes() {
        let plan = FaultPlan::clean().with_bad_extent(Extent::new(100, 8));
        let mut inj = FaultInjector::new(base_disk(), plan, 1);
        let e = Extent::new(102, 2);
        for _ in 0..3 {
            let err = read(&mut inj, Instant::EPOCH, e).unwrap_err();
            assert_eq!(err.kind, FaultKind::Media);
            assert!(
                err.op.completed > Instant::EPOCH,
                "failure still costs time"
            );
        }
        // Writes are unaffected (remapping is the FS's job).
        assert!(inj.access(Instant::EPOCH, e, AccessKind::Write).is_ok());
        assert_eq!(inj.fault_stats().media_errors, 3);
    }

    #[test]
    fn transient_succeeds_after_n_retries() {
        let plan = FaultPlan::clean().with_transient(Extent::new(40, 8), 2);
        let mut inj = FaultInjector::new(base_disk(), plan, 1);
        let e = Extent::new(40, 4);
        let mut t = Instant::EPOCH;
        let e1 = read(&mut inj, t, e).unwrap_err();
        assert_eq!(e1.kind, FaultKind::Transient);
        t = e1.op.completed;
        let e2 = read(&mut inj, t, e).unwrap_err();
        t = e2.op.completed;
        let ok = read(&mut inj, t, e).expect("third attempt succeeds");
        assert!(ok.completed > t);
        assert_eq!(inj.fault_stats().transient_errors, 2);
        // Subsequent reads stay healthy.
        assert!(read(&mut inj, ok.completed, e).is_ok());
    }

    #[test]
    fn degraded_window_stretches_transfer_inside_window_only() {
        let until = Instant::EPOCH + Nanos::from_millis(100);
        let plan = FaultPlan::clean().with_degraded_window(DegradedWindow {
            from: Instant::EPOCH,
            until,
            region: None,
            slowdown: 3.0,
        });
        let mut inj = FaultInjector::new(base_disk(), plan, 1);
        let mut bare = base_disk();
        let e = Extent::new(0, 8);
        let nominal = SimDisk::access(&mut bare, Instant::EPOCH, e, AccessKind::Read);
        let slow = read(&mut inj, Instant::EPOCH, e).unwrap();
        assert!(slow.transfer > nominal.transfer.mul_u64(2), "3x slowdown");
        // Outside the window the same read is nominal again.
        let after = until + Nanos::from_millis(1);
        let normal = read(&mut inj, after, e).unwrap();
        assert_eq!(normal.transfer, nominal.transfer);
        assert_eq!(inj.fault_stats().degraded_ops, 1);
    }

    #[test]
    fn spikes_are_deterministic_under_seed() {
        let mk = |seed| {
            let plan = FaultPlan::clean().with_spikes(0.5, Nanos::from_millis(5));
            FaultInjector::new(base_disk(), plan, seed)
        };
        let run = |mut inj: FaultInjector| {
            let mut t = Instant::EPOCH;
            let mut completions = Vec::new();
            for i in 0..50u64 {
                let op = read(&mut inj, t, Extent::new((i * 13) % 1000, 2)).unwrap();
                t = op.completed;
                completions.push(op.completed);
            }
            (completions, inj.fault_stats())
        };
        let (a, sa) = run(mk(42));
        let (b, sb) = run(mk(42));
        assert_eq!(a, b, "same seed, same timeline");
        assert_eq!(sa, sb);
        assert!(sa.spikes > 0, "p=0.5 over 50 ops must spike");
        let (c, _) = run(mk(43));
        assert_ne!(a, c, "different seed, different spikes");
    }

    #[test]
    fn rearming_resets_fault_state_and_prng() {
        let plan = FaultPlan::clean().with_transient(Extent::new(0, 4), 1);
        let mut inj = FaultInjector::new(base_disk(), plan.clone(), 9);
        let e = Extent::new(0, 2);
        assert!(read(&mut inj, Instant::EPOCH, e).is_err());
        assert!(read(&mut inj, Instant::EPOCH, e).is_ok());
        assert!(inj.arm_faults(plan));
        assert!(
            read(&mut inj, Instant::EPOCH, e).is_err(),
            "re-armed plan fails again"
        );
        assert!(!inj.plan().is_clean());
        assert_eq!(inj.bad_extents(), &[] as &[Extent]);
    }

    fn write(d: &mut dyn BlockDevice, t: Instant, e: Extent, fill: u8) -> AccessResult {
        let data = vec![fill; (e.sectors * 512) as usize];
        d.store_data(e, &data);
        d.access(t, e, AccessKind::Write)
    }

    #[test]
    fn torn_extent_persists_only_a_prefix() {
        let region = Extent::new(200, 16);
        let plan = FaultPlan::clean().with_torn_extent(region);
        let mut inj = FaultInjector::new(base_disk(), plan, 5);
        let e = Extent::new(204, 8);
        let err = write(&mut inj, Instant::EPOCH, e, 0xAB).unwrap_err();
        assert_eq!(err.kind, FaultKind::Torn);
        assert!(err.op.completed > Instant::EPOCH, "torn write costs time");
        // Some prefix of the sectors persisted; the suffix reads zero.
        let bytes = inj.try_fetch(e).unwrap();
        let kept = bytes.chunks(512).take_while(|s| s[0] == 0xAB).count();
        assert!(kept < 8, "a torn write never lands fully");
        assert!(
            bytes[kept * 512..].iter().all(|&b| b == 0),
            "suffix must be dropped"
        );
        assert_eq!(inj.fault_stats().torn_writes, 1);
        // Writes outside the region are untouched.
        assert!(write(&mut inj, err.op.completed, Extent::new(400, 4), 1).is_ok());
    }

    #[test]
    fn write_transient_persists_nothing_then_succeeds() {
        let e = Extent::new(80, 4);
        let plan = FaultPlan::clean().with_write_transient(e, 2);
        let mut inj = FaultInjector::new(base_disk(), plan, 1);
        let mut t = Instant::EPOCH;
        for _ in 0..2 {
            let err = write(&mut inj, t, e, 7).unwrap_err();
            assert_eq!(err.kind, FaultKind::Transient);
            assert!(
                inj.try_fetch(e).unwrap().iter().all(|&b| b == 0),
                "failed write attempt must persist nothing"
            );
            t = err.op.completed;
        }
        let ok = write(&mut inj, t, e, 7).expect("third attempt lands");
        assert!(inj.try_fetch(e).unwrap().iter().all(|&b| b == 7));
        assert_eq!(inj.fault_stats().transient_errors, 2);
        assert!(ok.completed > t);
    }

    #[test]
    fn crash_point_freezes_image_until_power_cycle() {
        let plan = FaultPlan::clean().with_crash_point(CrashPoint::AfterWrites(2));
        let mut inj = FaultInjector::new(base_disk(), plan, 3);
        let mut t = Instant::EPOCH;
        for i in 0..2u64 {
            let op = write(&mut inj, t, Extent::new(i * 16, 4), 1).expect("pre-crash writes land");
            t = op.completed;
        }
        // The third write tears and freezes the device.
        let err = write(&mut inj, t, Extent::new(64, 4), 2).unwrap_err();
        assert_eq!(err.kind, FaultKind::Crashed);
        assert!(inj.is_crashed());
        let frozen = inj.content_hash();
        // Reads, writes and stores all bounce off the frozen image.
        assert_eq!(
            read(&mut inj, t, Extent::new(0, 4)).unwrap_err().kind,
            FaultKind::Crashed
        );
        let _ = write(&mut inj, t, Extent::new(128, 4), 3);
        inj.discard_data(Extent::new(0, 4));
        assert_eq!(inj.content_hash(), frozen, "post-crash image is frozen");
        assert!(inj.fault_stats().crashed_ops >= 2);
        // Power-cycling disarms the spent crash point and thaws the device.
        assert!(inj.power_cycle());
        assert!(!inj.is_crashed());
        assert!(write(&mut inj, t, Extent::new(128, 4), 3).is_ok());
        assert!(read(&mut inj, t, Extent::new(128, 4)).is_ok());
    }

    #[test]
    fn crash_image_is_deterministic_under_seed() {
        let run = |seed| {
            let plan = FaultPlan::clean().with_crash_point(CrashPoint::AfterWrites(3));
            let mut inj = FaultInjector::new(base_disk(), plan, seed);
            let mut t = Instant::EPOCH;
            for i in 0..6u64 {
                let e = Extent::new(i * 24, 6);
                match write(&mut inj, t, e, i as u8 + 1) {
                    Ok(op) => t = op.completed,
                    Err(f) => t = f.op.completed,
                }
            }
            inj.content_hash()
        };
        assert_eq!(run(11), run(11), "same plan+seed, byte-identical image");
    }

    #[test]
    fn crash_at_instant_fires_on_first_write_past_it() {
        let at = Instant::EPOCH + Nanos::from_millis(10);
        let plan = FaultPlan::clean().with_crash_point(CrashPoint::AtInstant(at));
        let mut inj = FaultInjector::new(base_disk(), plan, 1);
        assert!(write(&mut inj, Instant::EPOCH, Extent::new(0, 2), 1).is_ok());
        // Reads past the instant do not crash the device — only writes.
        assert!(read(&mut inj, at, Extent::new(0, 2)).is_ok());
        let err = write(&mut inj, at, Extent::new(8, 2), 2).unwrap_err();
        assert_eq!(err.kind, FaultKind::Crashed);
        assert!(inj.is_crashed());
    }

    #[test]
    fn silent_corruption_flips_bits_invisibly_and_deterministically() {
        let run = |seed| {
            let mut inj = FaultInjector::new(base_disk(), FaultPlan::clean(), seed);
            let e = Extent::new(300, 4);
            let _ = write(&mut inj, Instant::EPOCH, e, 0x5C);
            let clean_sum = inj.fetch_sum(e).unwrap();
            inj.arm_faults(FaultPlan::clean().with_silent_corruption(e));
            (inj, e, clean_sum)
        };
        let (mut inj, e, clean_sum) = run(21);
        // The device is oblivious: the read succeeds with no fault.
        assert!(read(&mut inj, Instant::EPOCH, e).is_ok());
        assert_eq!(inj.fault_stats().corrupted, 1);
        // But the payload rotted: exactly one bit differs.
        let rotten = inj.try_fetch(e).unwrap();
        let flipped: u32 = rotten.iter().map(|&b| (b ^ 0x5Cu8).count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one seeded bit flips");
        assert_ne!(inj.fetch_sum(e).unwrap(), clean_sum);
        // Same seed rots the same bit.
        let (inj2, e2, _) = run(21);
        assert_eq!(inj.try_fetch(e), inj2.try_fetch(e2));
        // A different seed rots a different bit.
        let (inj3, e3, _) = run(22);
        assert_ne!(inj.try_fetch(e), inj3.try_fetch(e3));
    }

    #[test]
    fn fail_slow_stretches_every_op_without_erroring() {
        let plan = FaultPlan::clean().with_fail_slow(10.0);
        assert!(!plan.is_clean());
        let mut slow = FaultInjector::new(base_disk(), plan, 1);
        let mut bare = base_disk();
        let e = Extent::new(64, 8);
        let nominal = SimDisk::access(&mut bare, Instant::EPOCH, e, AccessKind::Read);
        let gray = read(&mut slow, Instant::EPOCH, e).expect("fail-slow never errors");
        let want = nominal.service_time().as_nanos() as f64 * 10.0;
        let got = gray.service_time().as_nanos() as f64;
        assert!(
            (got - want).abs() / want < 1e-6,
            "10x stretch: nominal {nominal:?} vs gray {gray:?}"
        );
        assert_eq!(slow.fault_stats().fail_slow_ops, 1);
        assert_eq!(slow.fault_stats().media_errors, 0);
        assert_eq!(slow.fault_stats().transient_errors, 0);
    }

    #[test]
    fn usable_as_trait_object() {
        let mut dev: Box<dyn BlockDevice> = Box::new(base_disk());
        assert!(
            !dev.arm_faults(FaultPlan::clean()),
            "bare disk cannot inject"
        );
        let op = dev
            .access(Instant::EPOCH, Extent::new(0, 1), AccessKind::Read)
            .unwrap();
        assert!(op.completed > Instant::EPOCH);
        let mut dev: Box<dyn BlockDevice> =
            Box::new(FaultInjector::new(base_disk(), FaultPlan::clean(), 0));
        assert!(dev.arm_faults(FaultPlan::clean().with_bad_extent(Extent::new(0, 1))));
        assert!(dev
            .access(Instant::EPOCH, Extent::new(0, 1), AccessKind::Read)
            .is_err());
    }
}
