//! Multi-actuator disk arrays for the paper's *concurrent* architecture.

use crate::disk::{AccessKind, DiskOp, SimDisk};
use crate::geometry::{DiskGeometry, Extent};
use crate::seek::SeekModel;
use strandfs_units::{BitRate, Instant};

/// A block striped across several member disks of an array.
#[derive(Clone, Debug)]
pub struct StripedExtent {
    /// `(disk index, extent on that disk)` pairs, one per stripe unit.
    pub stripes: Vec<(usize, Extent)>,
}

impl StripedExtent {
    /// Total sectors across all stripes.
    pub fn total_sectors(&self) -> u64 {
        self.stripes.iter().map(|(_, e)| e.sectors).sum()
    }
}

/// An array of `p` identical, independently-seeking disks.
///
/// The paper's concurrent architecture (Fig. 3, Eq. 3) assumes `p`
/// simultaneous disk accesses; an array of `p` single-actuator disks is
/// the standard realization (RAID-0-style striping). Each member keeps
/// its own arm position and rotational phase, so parallel accesses
/// genuinely overlap in virtual time.
#[derive(Debug)]
pub struct DiskArray {
    disks: Vec<SimDisk>,
}

impl DiskArray {
    /// An array of `p` disks with identical geometry and seek model.
    ///
    /// Rotational phases are identical at t=0 (spindle-synchronized,
    /// as early arrays were); phase drift plays no role because each
    /// access computes its own rotational delay.
    pub fn new(p: usize, geometry: DiskGeometry, seek_model: SeekModel) -> Self {
        assert!(p > 0, "array needs at least one disk");
        DiskArray {
            disks: (0..p).map(|_| SimDisk::new(geometry, seek_model)).collect(),
        }
    }

    /// Number of member disks (the paper's degree of concurrency `p`).
    pub fn degree(&self) -> usize {
        self.disks.len()
    }

    /// Immutable access to a member disk.
    pub fn disk(&self, i: usize) -> &SimDisk {
        &self.disks[i]
    }

    /// Mutable access to a member disk.
    pub fn disk_mut(&mut self, i: usize) -> &mut SimDisk {
        &mut self.disks[i]
    }

    /// Aggregate sustained transfer rate: `p ×` one member's track rate.
    pub fn aggregate_transfer_rate(&self) -> BitRate {
        self.disks[0].geometry().track_transfer_rate() * self.degree() as f64
    }

    /// Issue the stripes of `se` simultaneously at `now`, one per member,
    /// and return the per-stripe timings plus the instant the *last*
    /// stripe completes (the block is usable only when whole).
    ///
    /// Panics if two stripes name the same member disk: a single actuator
    /// cannot run two accesses concurrently, and schedulers must serialize
    /// such requests instead.
    pub fn access_striped(
        &mut self,
        now: Instant,
        se: &StripedExtent,
        kind: AccessKind,
    ) -> (Vec<DiskOp>, Instant) {
        let mut seen = vec![false; self.disks.len()];
        let mut ops = Vec::with_capacity(se.stripes.len());
        let mut done = now;
        for &(i, extent) in &se.stripes {
            assert!(
                !std::mem::replace(&mut seen[i], true),
                "two concurrent stripes on disk {i}"
            );
            let op = self.disks[i].access(now, extent, kind);
            if op.completed > done {
                done = op.completed;
            }
            ops.push(op);
        }
        (ops, done)
    }

    /// Round-robin stripe a logical run of `blocks` blocks of
    /// `sectors_per_block` sectors each, placing block `b` on disk
    /// `b mod p` at the LBA chosen by `place` (a callback so callers can
    /// use their own per-disk allocators).
    pub fn stripe_blocks<F>(
        &self,
        blocks: u64,
        sectors_per_block: u64,
        mut place: F,
    ) -> Vec<StripedExtent>
    where
        F: FnMut(usize, u64) -> Extent,
    {
        let p = self.degree();
        let mut groups: Vec<StripedExtent> = Vec::new();
        for b in 0..blocks {
            let disk_idx = (b as usize) % p;
            let extent = place(disk_idx, sectors_per_block);
            if disk_idx == 0 {
                groups.push(StripedExtent {
                    stripes: Vec::with_capacity(p),
                });
            }
            groups
                .last_mut()
                .expect("group created at stripe start")
                .stripes
                .push((disk_idx, extent));
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strandfs_units::Nanos;

    fn array(p: usize) -> DiskArray {
        DiskArray::new(p, DiskGeometry::tiny_test(), SeekModel::vintage_1991())
    }

    #[test]
    fn aggregate_rate_scales_with_degree() {
        let a1 = array(1);
        let a4 = array(4);
        let r1 = a1.aggregate_transfer_rate().get();
        let r4 = a4.aggregate_transfer_rate().get();
        assert!((r4 - 4.0 * r1).abs() < 1e-6);
    }

    #[test]
    fn striped_access_overlaps_in_time() {
        let mut a = array(4);
        let se = StripedExtent {
            stripes: (0..4).map(|i| (i, Extent::new(100, 8))).collect(),
        };
        let (ops, done) = a.access_striped(Instant::EPOCH, &se, AccessKind::Read);
        assert_eq!(ops.len(), 4);
        // All four issue at the same instant.
        assert!(ops.iter().all(|op| op.issued == Instant::EPOCH));
        // Completion is the max, not the sum.
        let max = ops.iter().map(|o| o.completed).max().unwrap();
        let sum: Nanos = ops.iter().map(|o| o.service_time()).sum();
        assert_eq!(done, max);
        assert!(done - Instant::EPOCH < sum, "must be parallel, not serial");
    }

    #[test]
    #[should_panic(expected = "two concurrent stripes")]
    fn same_disk_twice_panics() {
        let mut a = array(2);
        let se = StripedExtent {
            stripes: vec![(0, Extent::new(0, 1)), (0, Extent::new(8, 1))],
        };
        a.access_striped(Instant::EPOCH, &se, AccessKind::Read);
    }

    #[test]
    fn stripe_blocks_round_robin() {
        let a = array(3);
        let mut next = [0u64; 3];
        let groups = a.stripe_blocks(7, 4, |disk, sectors| {
            let start = next[disk];
            next[disk] += sectors;
            Extent::new(start, sectors)
        });
        // 7 blocks over 3 disks: groups of 3, 3, 1.
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].stripes.len(), 3);
        assert_eq!(groups[1].stripes.len(), 3);
        assert_eq!(groups[2].stripes.len(), 1);
        assert_eq!(groups[0].stripes[1].0, 1);
        assert_eq!(groups[1].stripes[0].1, Extent::new(4, 4));
        assert_eq!(groups[0].total_sectors(), 12);
    }

    #[test]
    fn members_keep_independent_arm_positions() {
        let mut a = array(2);
        let far = a.disk(0).geometry().sectors_per_cylinder() * 30;
        a.disk_mut(0)
            .access(Instant::EPOCH, Extent::new(far, 1), AccessKind::Read);
        assert_eq!(a.disk(0).head_cylinder(), 30);
        assert_eq!(a.disk(1).head_cylinder(), 0);
    }
}
