//! Sector-granularity free-space tracking.

use crate::geometry::{Extent, Lba};

/// A free-space bitmap over a disk's sectors with extent-oriented search.
///
/// All allocation policies sit on top of this map. It is deliberately a
/// plain bitmap (one bit per sector) rather than an extent tree: media
/// blocks are large and allocation happens at recording rate, not at
/// random-write rate, so the simple structure is never the bottleneck and
/// its invariants are trivially checkable.
#[derive(Clone, Debug)]
pub struct FreeMap {
    bits: Vec<u64>,
    total: u64,
    free: u64,
}

const WORD: u64 = 64;

impl FreeMap {
    /// A map of `total` sectors, all free.
    pub fn new(total: u64) -> Self {
        let words = total.div_ceil(WORD) as usize;
        FreeMap {
            bits: vec![0; words],
            total,
            free: total,
        }
    }

    /// Total sectors tracked.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sectors currently free.
    #[inline]
    pub fn free(&self) -> u64 {
        self.free
    }

    /// Sectors currently allocated.
    #[inline]
    pub fn used(&self) -> u64 {
        self.total - self.free
    }

    /// Fraction of the disk allocated, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.used() as f64 / self.total as f64
        }
    }

    #[inline]
    fn is_set(&self, lba: Lba) -> bool {
        (self.bits[(lba / WORD) as usize] >> (lba % WORD)) & 1 == 1
    }

    /// True if `lba` is allocated.
    #[inline]
    pub fn is_used(&self, lba: Lba) -> bool {
        debug_assert!(lba < self.total);
        self.is_set(lba)
    }

    /// True if every sector of `e` is free.
    pub fn extent_free(&self, e: Extent) -> bool {
        if e.end() > self.total {
            return false;
        }
        (e.start..e.end()).all(|s| !self.is_set(s))
    }

    /// True if every sector of `e` is allocated.
    pub fn extent_used(&self, e: Extent) -> bool {
        if e.end() > self.total {
            return false;
        }
        (e.start..e.end()).all(|s| self.is_set(s))
    }

    /// Mark `e` allocated. Panics if any sector is already allocated or
    /// off-map — double allocation is a file-system bug.
    pub fn allocate(&mut self, e: Extent) {
        assert!(e.end() <= self.total, "allocate beyond map: {e:?}");
        for s in e.start..e.end() {
            assert!(!self.is_set(s), "double allocation at sector {s}");
            self.bits[(s / WORD) as usize] |= 1 << (s % WORD);
        }
        self.free -= e.sectors;
    }

    /// Mark `e` free. Panics if any sector is already free or off-map.
    pub fn release(&mut self, e: Extent) {
        assert!(e.end() <= self.total, "release beyond map: {e:?}");
        for s in e.start..e.end() {
            assert!(self.is_set(s), "double free at sector {s}");
            self.bits[(s / WORD) as usize] &= !(1 << (s % WORD));
        }
        self.free += e.sectors;
    }

    /// Find the first free run of `len` sectors whose start lies in
    /// `[from, to)` (the run itself may extend past `to` but not past the
    /// map). Returns its start.
    pub fn find_free_run(&self, from: Lba, to: Lba, len: u64) -> Option<Lba> {
        if len == 0 {
            return None;
        }
        let to = to.min(self.total);
        let mut start = from;
        while start < to && start + len <= self.total {
            // Extend the current candidate run.
            match (start..start + len).find(|&s| self.is_set(s)) {
                None => return Some(start),
                // Skip past the blocking allocated sector.
                Some(blocked) => start = blocked + 1,
            }
        }
        None
    }

    /// Iterate over all maximal free extents, in address order.
    pub fn free_extents(&self) -> Vec<Extent> {
        let mut out = Vec::new();
        let mut run_start: Option<Lba> = None;
        for s in 0..self.total {
            match (self.is_set(s), run_start) {
                (false, None) => run_start = Some(s),
                (true, Some(st)) => {
                    out.push(Extent::new(st, s - st));
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(st) = run_start {
            out.push(Extent::new(st, self.total - st));
        }
        out
    }

    /// The largest free extent, if any sector is free.
    pub fn largest_free_extent(&self) -> Option<Extent> {
        self.free_extents().into_iter().max_by_key(|e| e.sectors)
    }

    /// External fragmentation: `1 - largest_free / total_free`, 0 when
    /// empty or when the free space is one run.
    pub fn fragmentation(&self) -> f64 {
        if self.free == 0 {
            return 0.0;
        }
        let largest = self.largest_free_extent().map(|e| e.sectors).unwrap_or(0);
        1.0 - largest as f64 / self.free as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_map_is_all_free() {
        let m = FreeMap::new(100);
        assert_eq!(m.free(), 100);
        assert_eq!(m.used(), 0);
        assert_eq!(m.utilization(), 0.0);
        assert!(m.extent_free(Extent::new(0, 100)));
    }

    #[test]
    fn allocate_release_round_trip() {
        let mut m = FreeMap::new(100);
        let e = Extent::new(10, 20);
        m.allocate(e);
        assert_eq!(m.used(), 20);
        assert!(m.extent_used(e));
        assert!(!m.extent_free(Extent::new(9, 2)));
        assert!(m.extent_free(Extent::new(0, 10)));
        m.release(e);
        assert_eq!(m.used(), 0);
        assert!(m.extent_free(e));
    }

    #[test]
    #[should_panic(expected = "double allocation")]
    fn double_allocation_panics() {
        let mut m = FreeMap::new(100);
        m.allocate(Extent::new(0, 10));
        m.allocate(Extent::new(5, 10));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut m = FreeMap::new(100);
        m.release(Extent::new(0, 1));
    }

    #[test]
    fn find_free_run_skips_allocated() {
        let mut m = FreeMap::new(64);
        m.allocate(Extent::new(4, 4));
        assert_eq!(m.find_free_run(0, 64, 4), Some(0));
        assert_eq!(m.find_free_run(2, 64, 4), Some(8));
        assert_eq!(m.find_free_run(0, 64, 5), Some(8));
        // Window that excludes all valid starts.
        assert_eq!(m.find_free_run(4, 8, 1), None);
        // Too long for the remaining space.
        assert_eq!(m.find_free_run(0, 64, 61), None);
        assert_eq!(m.find_free_run(0, 64, 0), None);
    }

    #[test]
    fn find_free_run_respects_map_end() {
        let m = FreeMap::new(10);
        assert_eq!(m.find_free_run(8, 10, 3), None);
        assert_eq!(m.find_free_run(8, 10, 2), Some(8));
    }

    #[test]
    fn free_extents_enumeration() {
        let mut m = FreeMap::new(32);
        m.allocate(Extent::new(0, 4));
        m.allocate(Extent::new(10, 6));
        m.allocate(Extent::new(30, 2));
        assert_eq!(
            m.free_extents(),
            vec![Extent::new(4, 6), Extent::new(16, 14)]
        );
        assert_eq!(m.largest_free_extent(), Some(Extent::new(16, 14)));
    }

    #[test]
    fn fragmentation_metric() {
        let mut m = FreeMap::new(100);
        assert_eq!(m.fragmentation(), 0.0);
        // Checkerboard the first 20 sectors.
        for i in 0..10 {
            m.allocate(Extent::new(i * 2, 1));
        }
        let frag = m.fragmentation();
        assert!(frag > 0.0 && frag < 1.0);
        // Fully allocated -> defined as 0.
        let mut full = FreeMap::new(4);
        full.allocate(Extent::new(0, 4));
        assert_eq!(full.fragmentation(), 0.0);
    }

    #[test]
    fn word_boundary_handling() {
        let mut m = FreeMap::new(130);
        m.allocate(Extent::new(62, 5)); // spans the word-0/word-1 boundary
        assert!(m.extent_used(Extent::new(62, 5)));
        assert!(m.extent_free(Extent::new(0, 62)));
        assert!(m.extent_free(Extent::new(67, 63)));
        m.release(Extent::new(62, 5));
        assert_eq!(m.free(), 130);
    }
}
