//! Cumulative statistics for simulated disks.
//!
//! Per-operation tracing lives in `strandfs-obs` ([`SimDisk::set_obs`]
//! with a ring recorder); this module keeps only the always-on
//! constant-memory counters.
//!
//! [`SimDisk::set_obs`]: crate::SimDisk::set_obs

use crate::disk::{AccessKind, DiskOp};
use strandfs_units::Nanos;

/// Cumulative counters over all operations a disk has served.
#[derive(Clone, Debug, Default)]
pub struct DiskStats {
    /// Number of read operations.
    pub reads: u64,
    /// Number of write operations.
    pub writes: u64,
    /// Total sectors moved in either direction.
    pub sectors_transferred: u64,
    /// Total time spent seeking.
    pub seek_time: Nanos,
    /// Total rotational latency.
    pub rotation_time: Nanos,
    /// Total media transfer time.
    pub transfer_time: Nanos,
}

impl DiskStats {
    /// Fold one operation into the counters.
    pub fn record(&mut self, op: &DiskOp) {
        match op.kind {
            AccessKind::Read => self.reads += 1,
            AccessKind::Write => self.writes += 1,
        }
        self.sectors_transferred += op.extent.sectors;
        self.seek_time += op.seek;
        self.rotation_time += op.rotation;
        self.transfer_time += op.transfer;
    }

    /// Total operations served.
    pub fn ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total busy time (seek + rotation + transfer).
    pub fn busy_time(&self) -> Nanos {
        self.seek_time + self.rotation_time + self.transfer_time
    }

    /// Fraction of busy time spent positioning rather than transferring —
    /// the overhead the scattering bound exists to control.
    pub fn positioning_fraction(&self) -> f64 {
        let busy = self.busy_time().as_nanos();
        if busy == 0 {
            return 0.0;
        }
        (self.seek_time + self.rotation_time).as_nanos() as f64 / busy as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Extent;
    use strandfs_units::Instant;

    fn op(kind: AccessKind, sectors: u64, service_us: u64) -> DiskOp {
        DiskOp {
            extent: Extent::new(0, sectors),
            kind,
            issued: Instant::EPOCH,
            seek: Nanos::from_micros(service_us / 2),
            rotation: Nanos::from_micros(service_us / 4),
            transfer: Nanos::from_micros(service_us / 4),
            completed: Instant::EPOCH + Nanos::from_micros(service_us),
        }
    }

    #[test]
    fn stats_fold() {
        let mut s = DiskStats::default();
        s.record(&op(AccessKind::Read, 4, 400));
        s.record(&op(AccessKind::Write, 2, 200));
        assert_eq!(s.ops(), 2);
        assert_eq!(s.sectors_transferred, 6);
        assert_eq!(s.busy_time(), Nanos::from_micros(600));
        // 3/4 of each op is positioning in this synthetic construction.
        assert!((s.positioning_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_stats() {
        let s = DiskStats::default();
        assert_eq!(s.positioning_fraction(), 0.0);
        assert_eq!(s.busy_time(), Nanos::ZERO);
    }
}
