//! Workload generators: synthetic recordings for tests, examples and
//! benches.
//!
//! Everything is seeded and deterministic so that experiments replay
//! exactly.

use crate::codec::VideoCodec;
use crate::format::AudioFormat;
use crate::silence::{BlockClass, SilenceDetector, TalkSpurtSource};
use strandfs_units::Bits;

/// A synthetic video recording: a sequence of compressed frame sizes.
#[derive(Clone, Debug)]
pub struct VideoRecording {
    /// Compressed size of each frame, in order.
    pub frame_bits: Vec<Bits>,
    /// Frames per second.
    pub fps: f64,
}

impl VideoRecording {
    /// Record `seconds` of video through `codec`.
    pub fn capture(codec: &VideoCodec, seconds: f64) -> Self {
        let fps = codec.format().rate.get();
        let frames = (fps * seconds).round() as u64;
        VideoRecording {
            frame_bits: (0..frames).map(|i| codec.frame_bits(i)).collect(),
            fps,
        }
    }

    /// Number of frames.
    pub fn frames(&self) -> u64 {
        self.frame_bits.len() as u64
    }

    /// Total compressed size.
    pub fn total_bits(&self) -> Bits {
        self.frame_bits.iter().copied().sum()
    }

    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        self.frames() as f64 / self.fps
    }
}

/// A synthetic audio recording, block-classified for silence.
#[derive(Clone, Debug)]
pub struct AudioRecording {
    /// Raw PCM samples.
    pub samples: Vec<i32>,
    /// The audio format.
    pub format: AudioFormat,
    /// Per-block silence classification at `block_samples` granularity.
    pub classes: Vec<BlockClass>,
    /// Samples per classified block.
    pub block_samples: usize,
}

impl AudioRecording {
    /// Record `seconds` of telephone-quality talk-spurt audio, classified
    /// into blocks of `block_samples` samples.
    pub fn capture_telephone(seed: u64, seconds: f64, block_samples: usize) -> Self {
        let format = AudioFormat::UVC_TELEPHONE;
        let n = (format.sample_rate.get() * seconds) as usize;
        let samples = TalkSpurtSource::telephone(seed).generate(n);
        let classes = SilenceDetector::telephone().classify_stream(&samples, block_samples);
        AudioRecording {
            samples,
            format,
            classes,
            block_samples,
        }
    }

    /// Number of classified blocks.
    pub fn blocks(&self) -> usize {
        self.classes.len()
    }

    /// Number of blocks that must be stored (audible).
    pub fn audible_blocks(&self) -> usize {
        self.classes
            .iter()
            .filter(|c| **c == BlockClass::Audible)
            .count()
    }

    /// Storage saved by silence elimination, as a fraction in `[0, 1]`.
    pub fn savings(&self) -> f64 {
        if self.classes.is_empty() {
            return 0.0;
        }
        1.0 - self.audible_blocks() as f64 / self.blocks() as f64
    }

    /// The PCM payload of block `i`, empty for the trailing partial
    /// region beyond the sample buffer.
    pub fn block_samples_of(&self, i: usize) -> &[i32] {
        let start = i * self.block_samples;
        let end = ((i + 1) * self.block_samples).min(self.samples.len());
        &self.samples[start.min(self.samples.len())..end]
    }

    /// Encode block `i` as bytes (one byte per 8-bit sample, clamped).
    pub fn block_payload(&self, i: usize) -> Vec<u8> {
        self.block_samples_of(i)
            .iter()
            .map(|&s| s.clamp(-128, 127) as i8 as u8)
            .collect()
    }
}

/// A library of mixed recordings for multi-client experiments.
#[derive(Clone, Debug)]
pub struct WorkloadLibrary {
    /// Video recordings, one per client.
    pub videos: Vec<VideoRecording>,
}

impl WorkloadLibrary {
    /// `n` constant-rate NTSC clips of `seconds` each, distinct seeds.
    pub fn uniform_ntsc(n: usize, seconds: f64) -> Self {
        WorkloadLibrary {
            videos: (0..n)
                .map(|i| VideoRecording::capture(&VideoCodec::uvc_ntsc(i as u64), seconds))
                .collect(),
        }
    }

    /// `n` variable-bit-rate NTSC clips of `seconds` each.
    pub fn vbr_ntsc(n: usize, seconds: f64) -> Self {
        WorkloadLibrary {
            videos: (0..n)
                .map(|i| VideoRecording::capture(&VideoCodec::uvc_ntsc_vbr(i as u64), seconds))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_capture_counts_frames() {
        let v = VideoRecording::capture(&VideoCodec::uvc_ntsc(0), 2.0);
        assert_eq!(v.frames(), 60);
        assert!((v.duration() - 2.0).abs() < 1e-9);
        assert!(v.total_bits().get() > 0);
    }

    #[test]
    fn audio_capture_classifies() {
        let a = AudioRecording::capture_telephone(3, 10.0, 800);
        assert_eq!(a.blocks(), 100);
        let s = a.savings();
        assert!(s > 0.0 && s < 1.0, "savings = {s}");
        assert_eq!(
            a.audible_blocks() + (a.savings() * 100.0).round() as usize,
            100
        );
    }

    #[test]
    fn audio_block_payload_round() {
        let a = AudioRecording::capture_telephone(3, 1.0, 800);
        assert_eq!(a.block_samples_of(0).len(), 800);
        assert_eq!(a.block_payload(0).len(), 800);
        // Final block index beyond data is empty.
        assert!(a.block_samples_of(10).is_empty());
    }

    #[test]
    fn library_sizes() {
        let lib = WorkloadLibrary::uniform_ntsc(4, 1.0);
        assert_eq!(lib.videos.len(), 4);
        let vbr = WorkloadLibrary::vbr_ntsc(2, 1.0);
        // Distinct seeds give distinct streams.
        assert_ne!(vbr.videos[0].frame_bits, vbr.videos[1].frame_bits);
    }
}
