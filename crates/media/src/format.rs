//! Raw media formats and presets.

use strandfs_units::{BitRate, Bits, FrameRate, SampleRate};

/// Which medium a strand or block carries.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Medium {
    /// Motion video (sequences of frames).
    Video,
    /// Audio (sequences of samples).
    Audio,
}

impl std::fmt::Display for Medium {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Medium::Video => write!(f, "video"),
            Medium::Audio => write!(f, "audio"),
        }
    }
}

/// Geometry and rate of an uncompressed video stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VideoFormat {
    /// Horizontal resolution in pixels.
    pub width: u32,
    /// Vertical resolution in pixels.
    pub height: u32,
    /// Colour depth in bits per pixel.
    pub bits_per_pixel: u32,
    /// Recording/display rate (the paper's `R_vr`).
    pub rate: FrameRate,
}

impl VideoFormat {
    /// The paper's UVC capture hardware: NTSC broadcast at 480×200 pixels,
    /// 12 bits of colour per pixel, 30 frames/s.
    pub const UVC_NTSC: VideoFormat = VideoFormat {
        width: 480,
        height: 200,
        bits_per_pixel: 12,
        rate: FrameRate::NTSC,
    };

    /// An HDTV-class stream, the paper's high-end example requiring up to
    /// 2.5 Gbit/s uncompressed.
    pub const HDTV: VideoFormat = VideoFormat {
        width: 1920,
        height: 1080,
        bits_per_pixel: 24,
        rate: FrameRate::HDTV60,
    };

    /// Quarter-size conferencing video.
    pub const QCIF: VideoFormat = VideoFormat {
        width: 176,
        height: 144,
        bits_per_pixel: 12,
        rate: FrameRate::per_sec(15.0),
    };

    /// Bits per uncompressed frame (the paper's `s_vf` before
    /// compression).
    #[inline]
    pub fn raw_frame_bits(&self) -> Bits {
        Bits::new(self.width as u64 * self.height as u64 * self.bits_per_pixel as u64)
    }

    /// Uncompressed stream rate: `raw_frame_bits × R_vr`.
    #[inline]
    pub fn raw_bit_rate(&self) -> BitRate {
        BitRate::bits_per_sec(self.raw_frame_bits().as_f64() * self.rate.get())
    }
}

/// Sample geometry and rate of an audio stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AudioFormat {
    /// Sampling rate (the paper's `R_ar`).
    pub sample_rate: SampleRate,
    /// Bits per sample (the paper's `s_as`).
    pub bits_per_sample: u32,
}

impl AudioFormat {
    /// The paper's audio hardware: 8 KBytes/s = 8 kHz × 8-bit samples.
    pub const UVC_TELEPHONE: AudioFormat = AudioFormat {
        sample_rate: SampleRate::TELEPHONE,
        bits_per_sample: 8,
    };

    /// CD-quality stereo (treated as one interleaved sample stream).
    pub const CD_STEREO: AudioFormat = AudioFormat {
        sample_rate: SampleRate::CD,
        bits_per_sample: 32,
    };

    /// Bits per sample as a size.
    #[inline]
    pub fn sample_bits(&self) -> Bits {
        Bits::new(self.bits_per_sample as u64)
    }

    /// Stream rate: `bits_per_sample × R_ar`.
    #[inline]
    pub fn bit_rate(&self) -> BitRate {
        BitRate::bits_per_sec(self.bits_per_sample as f64 * self.sample_rate.get())
    }

    /// Samples covering `seconds` of audio, rounded down.
    #[inline]
    pub fn samples_in(&self, seconds: f64) -> u64 {
        (self.sample_rate.get() * seconds) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uvc_ntsc_matches_paper_hardware() {
        let f = VideoFormat::UVC_NTSC;
        assert_eq!(f.raw_frame_bits(), Bits::new(480 * 200 * 12));
        // 1.152 Mbit/frame at 30 fps = 34.56 Mbit/s raw.
        assert!((f.raw_bit_rate().as_mbit_per_sec() - 34.56).abs() < 1e-9);
    }

    #[test]
    fn hdtv_is_gigabit_class() {
        let f = VideoFormat::HDTV;
        // 1920*1080*24*60 ≈ 2.99 Gbit/s raw — the paper quotes "up to
        // 2.5 Gbit/s" for HDTV-quality strands.
        let gbit = f.raw_bit_rate().get() / 1e9;
        assert!(gbit > 2.0 && gbit < 3.5, "{gbit}");
    }

    #[test]
    fn telephone_audio_is_8_kbytes_per_sec() {
        let a = AudioFormat::UVC_TELEPHONE;
        assert!((a.bit_rate().get() - 64_000.0).abs() < 1e-9); // 8 KB/s
        assert_eq!(a.samples_in(2.5), 20_000);
    }

    #[test]
    fn medium_display() {
        assert_eq!(Medium::Video.to_string(), "video");
        assert_eq!(Medium::Audio.to_string(), "audio");
    }
}
