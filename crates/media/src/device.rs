//! Media device models: capture and display peripherals.
//!
//! §3.3.4 of the paper derives storage granularity from the *internal
//! buffers of the display device*: with `f` frame buffers, a pipelined
//! device splits them into two halves of `f/2`, and a `p`-way concurrent
//! device into `p` groups of `f/p`; granularity `q_vs` may then be chosen
//! anywhere in `1..=f/2` (or `1..=f/p`). These types carry exactly that
//! information.

use crate::codec::CodecTiming;
use crate::format::{AudioFormat, VideoFormat};
use strandfs_units::{BitRate, Seconds};

/// The disk-to-display organization of §3.1 (Figs. 1–3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RetrievalArchitecture {
    /// Read a block, then display it, strictly alternating (Fig. 1).
    Sequential,
    /// Read block `i+1` while displaying block `i` (Fig. 2).
    Pipelined,
    /// `p` concurrent disk accesses feeding one display (Fig. 3).
    Concurrent {
        /// Degree of concurrency (number of simultaneous disk accesses).
        p: u32,
    },
}

impl RetrievalArchitecture {
    /// Buffers required to satisfy *strict* continuity (§3.3.2):
    /// 1, 2 and `p` blocks respectively.
    pub fn strict_buffers(&self) -> u32 {
        match *self {
            RetrievalArchitecture::Sequential => 1,
            RetrievalArchitecture::Pipelined => 2,
            RetrievalArchitecture::Concurrent { p } => p,
        }
    }

    /// Read-ahead (blocks) required when continuity is satisfied over an
    /// average of `k` successive blocks: `k`, `k` and `p·k` (§3.3.2).
    pub fn read_ahead(&self, k: u32) -> u32 {
        match *self {
            RetrievalArchitecture::Sequential | RetrievalArchitecture::Pipelined => k,
            RetrievalArchitecture::Concurrent { p } => p * k,
        }
    }

    /// Buffers required under `k`-averaged continuity: `k`, `2k` and
    /// `p·k` (§3.3.2 — pipelined doubles the read-ahead because one set
    /// displays while the other fills).
    pub fn averaged_buffers(&self, k: u32) -> u32 {
        match *self {
            RetrievalArchitecture::Sequential => k,
            RetrievalArchitecture::Pipelined => 2 * k,
            RetrievalArchitecture::Concurrent { p } => p * k,
        }
    }

    /// The degree of disk concurrency (1 unless `Concurrent`).
    pub fn concurrency(&self) -> u32 {
        match *self {
            RetrievalArchitecture::Concurrent { p } => p,
            _ => 1,
        }
    }
}

/// A display peripheral: decompress + D/A hardware with `f` internal
/// frame buffers fed directly from disk.
#[derive(Clone, Debug)]
pub struct DisplayDevice {
    /// The video format the device displays.
    pub format: VideoFormat,
    /// Codec timing (the display direction is used).
    pub timing: CodecTiming,
    /// Internal buffer capacity in frames (the paper's `f`).
    pub frame_buffers: u32,
    /// Effective display-path bandwidth (the paper's `R_vd`).
    pub display_rate: BitRate,
}

impl DisplayDevice {
    /// A device matching the paper's UVC display hardware, generalized to
    /// `frame_buffers` internal buffers. Display bandwidth is set to 4×
    /// the raw stream rate: decompression hardware must outpace the
    /// stream or it could never sustain real time.
    pub fn uvc(frame_buffers: u32) -> Self {
        let format = VideoFormat::UVC_NTSC;
        DisplayDevice {
            format,
            timing: CodecTiming::real_time(&format, 0.5),
            frame_buffers,
            display_rate: format.raw_bit_rate() * 4.0,
        }
    }

    /// Maximum storage granularity (frames/block) usable with this device
    /// under `arch` (§3.3.4): `f` for sequential (single buffer set),
    /// `f/2` for pipelined, `f/p` for concurrent. At least 1 when any
    /// buffer exists.
    pub fn max_granularity(&self, arch: RetrievalArchitecture) -> u32 {
        let f = self.frame_buffers;
        let q = match arch {
            RetrievalArchitecture::Sequential => f,
            RetrievalArchitecture::Pipelined => f / 2,
            RetrievalArchitecture::Concurrent { p } => f / p.max(1),
        };
        q.max(1)
    }

    /// Time for this device to display one block of `q` frames of mean
    /// size `mean_frame_bits`: the `q·s_vf / R_vd` term of Eq. 1.
    pub fn block_display_time(&self, q: u32, mean_frame_bits: strandfs_units::Bits) -> Seconds {
        self.display_rate
            .transfer_time(strandfs_units::Bits::new(mean_frame_bits.get() * q as u64))
    }
}

/// A capture peripheral: digitizer + compressor with internal staging
/// buffers, the write-path mirror of [`DisplayDevice`].
#[derive(Clone, Debug)]
pub struct CaptureDevice {
    /// The video format the device captures (if video).
    pub video: Option<VideoFormat>,
    /// The audio format the device captures (if audio).
    pub audio: Option<AudioFormat>,
    /// Codec timing (the capture direction is used).
    pub timing: CodecTiming,
    /// Internal staging capacity in frames.
    pub frame_buffers: u32,
}

impl CaptureDevice {
    /// The paper's combined UVC capture station: NTSC video plus
    /// telephone-quality audio.
    pub fn uvc_station(frame_buffers: u32) -> Self {
        CaptureDevice {
            video: Some(VideoFormat::UVC_NTSC),
            audio: Some(AudioFormat::UVC_TELEPHONE),
            timing: CodecTiming::real_time(&VideoFormat::UVC_NTSC, 0.5),
            frame_buffers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_buffer_counts_match_paper() {
        assert_eq!(RetrievalArchitecture::Sequential.strict_buffers(), 1);
        assert_eq!(RetrievalArchitecture::Pipelined.strict_buffers(), 2);
        assert_eq!(
            RetrievalArchitecture::Concurrent { p: 8 }.strict_buffers(),
            8
        );
    }

    #[test]
    fn averaged_requirements_match_paper() {
        let k = 5;
        assert_eq!(RetrievalArchitecture::Sequential.read_ahead(k), 5);
        assert_eq!(RetrievalArchitecture::Pipelined.read_ahead(k), 5);
        assert_eq!(RetrievalArchitecture::Concurrent { p: 4 }.read_ahead(k), 20);
        assert_eq!(RetrievalArchitecture::Sequential.averaged_buffers(k), 5);
        assert_eq!(RetrievalArchitecture::Pipelined.averaged_buffers(k), 10);
        assert_eq!(
            RetrievalArchitecture::Concurrent { p: 4 }.averaged_buffers(k),
            20
        );
    }

    #[test]
    fn granularity_from_device_buffers() {
        let dev = DisplayDevice::uvc(16);
        assert_eq!(dev.max_granularity(RetrievalArchitecture::Sequential), 16);
        assert_eq!(dev.max_granularity(RetrievalArchitecture::Pipelined), 8);
        assert_eq!(
            dev.max_granularity(RetrievalArchitecture::Concurrent { p: 4 }),
            4
        );
        // Degenerate devices still admit q = 1.
        let tiny = DisplayDevice::uvc(1);
        assert_eq!(tiny.max_granularity(RetrievalArchitecture::Pipelined), 1);
    }

    #[test]
    fn display_time_scales_with_block() {
        let dev = DisplayDevice::uvc(8);
        let s = strandfs_units::Bits::new(1_000_000);
        let t1 = dev.block_display_time(1, s);
        let t4 = dev.block_display_time(4, s);
        assert!((t4.get() - 4.0 * t1.get()).abs() < 1e-12);
        // Display hardware outpaces real time: one frame displays faster
        // than one frame period.
        let frame = dev.format.raw_frame_bits();
        assert!(dev.block_display_time(1, frame) < dev.format.rate.frame_time());
    }

    #[test]
    fn capture_station_has_both_media() {
        let c = CaptureDevice::uvc_station(8);
        assert!(c.video.is_some());
        assert!(c.audio.is_some());
    }

    #[test]
    fn concurrency_accessor() {
        assert_eq!(RetrievalArchitecture::Sequential.concurrency(), 1);
        assert_eq!(RetrievalArchitecture::Concurrent { p: 6 }.concurrency(), 6);
    }
}
