//! Synthetic video compression.
//!
//! The UVC boards of the paper compressed NTSC in real time; the paper's
//! future-work section anticipates *variable-rate* compression
//! (inter-frame differencing). [`VideoCodec`] models both regimes: a
//! fixed compression ratio, or scene-structured variable sizes where
//! intra-coded frames at scene starts are large and difference-coded
//! frames shrink with temporal stability. Sizes are a pure function of
//! `(seed, frame index)`, so every run of an experiment sees the same
//! stream.

use crate::format::VideoFormat;
use strandfs_units::{Bits, Prng, Seconds};

/// How compressed frame sizes vary over time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FrameSizeModel {
    /// Every frame compresses to exactly `ratio` of its raw size.
    ConstantRate {
        /// Compressed size / raw size, in `(0, 1]`.
        ratio: f64,
    },
    /// Scene-structured variable bit rate: each scene opens with an
    /// intra-coded frame near `intra_ratio` of raw size, followed by
    /// difference frames near `inter_ratio`, with multiplicative jitter.
    Variable {
        /// Compression ratio of scene-opening (intra) frames.
        intra_ratio: f64,
        /// Compression ratio of difference (inter) frames.
        inter_ratio: f64,
        /// Mean scene length in frames (geometric distribution).
        mean_scene_len: u32,
        /// Multiplicative jitter half-width, e.g. 0.2 for ±20 %.
        jitter: f64,
    },
}

/// Service times of the media hardware path.
///
/// The paper assumes capture (digitize + compress) and display
/// (decompress + DAC) take approximately equal time; both default to a
/// fixed fraction of the frame period, as real-time codec hardware must
/// sustain.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CodecTiming {
    /// Time to digitize and compress one frame.
    pub capture_per_frame: Seconds,
    /// Time to decompress and convert one frame for display.
    pub display_per_frame: Seconds,
}

impl CodecTiming {
    /// Real-time hardware: both directions take `fraction` of the frame
    /// period at `format`'s rate.
    pub fn real_time(format: &VideoFormat, fraction: f64) -> Self {
        let t = format.rate.frame_time() * fraction;
        CodecTiming {
            capture_per_frame: t,
            display_per_frame: t,
        }
    }
}

/// A deterministic synthetic video compressor.
#[derive(Clone, Debug)]
pub struct VideoCodec {
    format: VideoFormat,
    model: FrameSizeModel,
    timing: CodecTiming,
    seed: u64,
}

impl VideoCodec {
    /// A codec for `format` with the given size model and timing.
    pub fn new(format: VideoFormat, model: FrameSizeModel, timing: CodecTiming, seed: u64) -> Self {
        if let FrameSizeModel::ConstantRate { ratio } = model {
            assert!(ratio > 0.0 && ratio <= 1.0, "ratio must be in (0,1]");
        }
        VideoCodec {
            format,
            model,
            timing,
            seed,
        }
    }

    /// The paper's UVC board: NTSC compressed ~12:1 at a constant rate,
    /// real-time (half a frame period each way).
    pub fn uvc_ntsc(seed: u64) -> Self {
        let format = VideoFormat::UVC_NTSC;
        VideoCodec::new(
            format,
            FrameSizeModel::ConstantRate { ratio: 1.0 / 12.0 },
            CodecTiming::real_time(&format, 0.5),
            seed,
        )
    }

    /// A variable-bit-rate variant of the UVC board, for the paper's
    /// future-work experiments on compression-aware bounds.
    pub fn uvc_ntsc_vbr(seed: u64) -> Self {
        let format = VideoFormat::UVC_NTSC;
        VideoCodec::new(
            format,
            FrameSizeModel::Variable {
                intra_ratio: 1.0 / 6.0,
                inter_ratio: 1.0 / 20.0,
                mean_scene_len: 90,
                jitter: 0.2,
            },
            CodecTiming::real_time(&format, 0.5),
            seed,
        )
    }

    /// The video format being compressed.
    pub fn format(&self) -> &VideoFormat {
        &self.format
    }

    /// The codec's timing model.
    pub fn timing(&self) -> &CodecTiming {
        &self.timing
    }

    /// Compressed size of frame `index`, in bits. Deterministic in
    /// `(seed, index)`; at least 8 bits (a degenerate all-black frame
    /// still carries a header).
    pub fn frame_bits(&self, index: u64) -> Bits {
        let raw = self.format.raw_frame_bits().as_f64();
        let bits = match self.model {
            FrameSizeModel::ConstantRate { ratio } => raw * ratio,
            FrameSizeModel::Variable {
                intra_ratio,
                inter_ratio,
                mean_scene_len,
                jitter,
            } => {
                // Derive this frame's scene phase by walking a seeded
                // geometric scene process. To stay O(1) per query we hash
                // the scene grid: frame `i` is intra iff a per-frame coin
                // with probability 1/mean_scene_len lands heads.
                let mut rng = self.frame_rng(index);
                let is_intra = index == 0 || rng.gen_range(0..mean_scene_len.max(1)) == 0;
                let base = if is_intra { intra_ratio } else { inter_ratio };
                let j = 1.0 + rng.gen_range(-jitter..=jitter);
                raw * base * j
            }
        };
        Bits::new((bits.max(8.0)) as u64)
    }

    /// Mean compressed frame size over the first `n` frames.
    pub fn mean_frame_bits(&self, n: u64) -> Bits {
        assert!(n > 0, "mean over zero frames");
        let total: u64 = (0..n).map(|i| self.frame_bits(i).get()).sum();
        Bits::new(total / n)
    }

    /// Largest compressed frame among the first `n`.
    pub fn max_frame_bits(&self, n: u64) -> Bits {
        (0..n)
            .map(|i| self.frame_bits(i))
            .max()
            .unwrap_or(Bits::ZERO)
    }

    /// A synthetic payload for frame `index` of the given size in bytes.
    /// Deterministic; used when actually storing frames on the simulated
    /// disk so read-back verification is meaningful.
    pub fn frame_payload(&self, index: u64, bytes: usize) -> Vec<u8> {
        let mut rng = self.frame_rng(index ^ 0x5061_796c_6f61_6421);
        let mut out = vec![0u8; bytes];
        rng.fill_bytes(&mut out[..]);
        out
    }

    fn frame_rng(&self, index: u64) -> Prng {
        // Mix seed and index through splitmix64 for decorrelated streams.
        Prng::seed_from_u64(strandfs_units::prng::mix_seed(self.seed, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_rate_is_exact() {
        let c = VideoCodec::uvc_ntsc(1);
        let raw = c.format().raw_frame_bits().as_f64();
        for i in 0..10 {
            let b = c.frame_bits(i).as_f64();
            assert!((b - raw / 12.0).abs() <= 1.0, "frame {i}: {b}");
        }
    }

    #[test]
    fn uvc_rate_is_sub_3_mbit_per_frame_pair() {
        // 34.56 Mbit/s / 12 = 2.88 Mbit/s compressed stream.
        let c = VideoCodec::uvc_ntsc(0);
        let per_sec = c.frame_bits(0).as_f64() * 30.0;
        assert!((per_sec - 2.88e6).abs() < 1e3, "{per_sec}");
    }

    #[test]
    fn vbr_is_deterministic_per_seed() {
        let a = VideoCodec::uvc_ntsc_vbr(7);
        let b = VideoCodec::uvc_ntsc_vbr(7);
        let c = VideoCodec::uvc_ntsc_vbr(8);
        let va: Vec<_> = (0..50).map(|i| a.frame_bits(i)).collect();
        let vb: Vec<_> = (0..50).map(|i| b.frame_bits(i)).collect();
        let vc: Vec<_> = (0..50).map(|i| c.frame_bits(i)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn vbr_first_frame_is_intra_sized() {
        let c = VideoCodec::uvc_ntsc_vbr(3);
        let raw = c.format().raw_frame_bits().as_f64();
        let first = c.frame_bits(0).as_f64();
        // intra ratio 1/6 with ±20 % jitter.
        assert!(first > raw / 6.0 * 0.79 && first < raw / 6.0 * 1.21);
    }

    #[test]
    fn vbr_sizes_vary() {
        let c = VideoCodec::uvc_ntsc_vbr(11);
        let sizes: Vec<_> = (0..200).map(|i| c.frame_bits(i).get()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max > min * 2, "expected intra/inter spread: {min}..{max}");
    }

    #[test]
    fn aggregates() {
        let c = VideoCodec::uvc_ntsc_vbr(5);
        let mean = c.mean_frame_bits(100);
        let max = c.max_frame_bits(100);
        assert!(max >= mean);
        assert!(mean.get() > 0);
    }

    #[test]
    fn payload_deterministic_and_sized() {
        let c = VideoCodec::uvc_ntsc(9);
        let p1 = c.frame_payload(4, 256);
        let p2 = c.frame_payload(4, 256);
        let p3 = c.frame_payload(5, 256);
        assert_eq!(p1.len(), 256);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
    }

    #[test]
    fn real_time_timing() {
        let t = CodecTiming::real_time(&VideoFormat::UVC_NTSC, 0.5);
        assert!((t.capture_per_frame.get() - 0.5 / 30.0).abs() < 1e-12);
        assert_eq!(t.capture_per_frame, t.display_per_frame);
    }

    #[test]
    #[should_panic(expected = "ratio must be in (0,1]")]
    fn bad_ratio_rejected() {
        VideoCodec::new(
            VideoFormat::UVC_NTSC,
            FrameSizeModel::ConstantRate { ratio: 1.5 },
            CodecTiming::real_time(&VideoFormat::UVC_NTSC, 0.5),
            0,
        );
    }
}
