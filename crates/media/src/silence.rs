//! Silence detection and elimination for audio strands.
//!
//! §4 of the paper: "if the average energy level over a block falls below
//! a threshold, no audio data is stored for that duration", with NULL
//! primary-index pointers standing in as delay holders. This module
//! provides the detector; the strand layer turns classified-silent blocks
//! into index holes.

use strandfs_units::Prng;

/// Classification of one block of audio samples.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockClass {
    /// Average energy at or above threshold: samples must be stored.
    Audible,
    /// Average energy below threshold: store a silence hole instead.
    Silent,
}

/// An energy-threshold silence detector.
///
/// Samples are signed 8/16-bit PCM widened to `i32`; block energy is the
/// mean of squared amplitudes, compared against `threshold`.
#[derive(Clone, Copy, Debug)]
pub struct SilenceDetector {
    /// Mean-square amplitude below which a block is silent.
    pub threshold: f64,
}

impl SilenceDetector {
    /// A detector with the given mean-square threshold.
    pub fn new(threshold: f64) -> Self {
        assert!(threshold >= 0.0, "threshold must be non-negative");
        SilenceDetector { threshold }
    }

    /// A threshold suited to 8-bit telephone PCM: about −30 dBFS.
    pub fn telephone() -> Self {
        // Full scale for i8 is 127; −30 dB in power is 1e-3 of 127².
        SilenceDetector::new(127.0 * 127.0 * 1e-3)
    }

    /// Mean-square energy of a block of samples.
    pub fn energy(samples: &[i32]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let sum: f64 = samples.iter().map(|&s| (s as f64) * (s as f64)).sum();
        sum / samples.len() as f64
    }

    /// Classify one block.
    pub fn classify(&self, samples: &[i32]) -> BlockClass {
        if Self::energy(samples) < self.threshold {
            BlockClass::Silent
        } else {
            BlockClass::Audible
        }
    }

    /// Classify a stream block-by-block; the final partial block (if any)
    /// is classified too.
    pub fn classify_stream(&self, samples: &[i32], block_len: usize) -> Vec<BlockClass> {
        assert!(block_len > 0, "block length must be positive");
        samples
            .chunks(block_len)
            .map(|b| self.classify(b))
            .collect()
    }

    /// Fraction of blocks classified silent, in `[0, 1]`.
    pub fn silence_fraction(&self, samples: &[i32], block_len: usize) -> f64 {
        let classes = self.classify_stream(samples, block_len);
        if classes.is_empty() {
            return 0.0;
        }
        let silent = classes.iter().filter(|c| **c == BlockClass::Silent).count();
        silent as f64 / classes.len() as f64
    }
}

/// A deterministic talk-spurt audio source.
///
/// Conversational speech alternates voiced spurts and pauses; classic
/// telephony measurements put the speaking fraction near 40 %. The
/// generator emits 8-bit-range PCM: noise-like voiced spurts of
/// geometrically-distributed length and near-zero samples in the gaps.
#[derive(Clone, Debug)]
pub struct TalkSpurtSource {
    rng: Prng,
    /// Probability a spurt continues at each sample.
    spurt_continue: f64,
    /// Probability a pause continues at each sample.
    pause_continue: f64,
    in_spurt: bool,
    amplitude: i32,
}

impl TalkSpurtSource {
    /// A source whose mean spurt and pause lengths are `mean_spurt` and
    /// `mean_pause` samples, at the given peak amplitude.
    pub fn new(seed: u64, mean_spurt: u64, mean_pause: u64, amplitude: i32) -> Self {
        assert!(mean_spurt > 0 && mean_pause > 0, "means must be positive");
        assert!(amplitude > 0, "amplitude must be positive");
        TalkSpurtSource {
            rng: Prng::seed_from_u64(seed),
            spurt_continue: 1.0 - 1.0 / mean_spurt as f64,
            pause_continue: 1.0 - 1.0 / mean_pause as f64,
            in_spurt: true,
            amplitude,
        }
    }

    /// Telephone speech at 8 kHz: ~1 s spurts, ~1.5 s pauses (≈40 %
    /// speech activity).
    pub fn telephone(seed: u64) -> Self {
        TalkSpurtSource::new(seed, 8_000, 12_000, 100)
    }

    /// Generate the next `n` samples.
    pub fn generate(&mut self, n: usize) -> Vec<i32> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let cont = if self.in_spurt {
                self.spurt_continue
            } else {
                self.pause_continue
            };
            if self.rng.gen_f64() >= cont {
                self.in_spurt = !self.in_spurt;
            }
            if self.in_spurt {
                out.push(self.rng.gen_range(-self.amplitude..=self.amplitude));
            } else {
                // Line noise well below any sensible threshold.
                out.push(self.rng.gen_range(-2..=2));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_of_silence_is_low() {
        let z = vec![0i32; 64];
        assert_eq!(SilenceDetector::energy(&z), 0.0);
        assert_eq!(SilenceDetector::energy(&[]), 0.0);
    }

    #[test]
    fn energy_of_tone() {
        // Constant amplitude a has mean-square a².
        let a = vec![100i32; 64];
        assert!((SilenceDetector::energy(&a) - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn classification_threshold() {
        let d = SilenceDetector::new(100.0);
        assert_eq!(d.classify(&[5, -5, 5, -5]), BlockClass::Silent); // E=25
        assert_eq!(d.classify(&[20, -20]), BlockClass::Audible); // E=400
    }

    #[test]
    fn stream_classification_chunks() {
        let d = SilenceDetector::new(100.0);
        let mut s = vec![50i32; 8]; // audible block
        s.extend(vec![1i32; 8]); // silent block
        s.extend(vec![50i32; 4]); // audible partial block
        let classes = d.classify_stream(&s, 8);
        assert_eq!(
            classes,
            vec![BlockClass::Audible, BlockClass::Silent, BlockClass::Audible]
        );
        assert!((d.silence_fraction(&s, 8) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn talk_spurts_produce_mixed_blocks() {
        let mut src = TalkSpurtSource::telephone(42);
        let samples = src.generate(8_000 * 20); // 20 seconds
        let d = SilenceDetector::telephone();
        let frac = d.silence_fraction(&samples, 1_000);
        // Roughly 60 % pause by construction; accept a wide band.
        assert!(frac > 0.3 && frac < 0.85, "silence fraction = {frac}");
    }

    #[test]
    fn talk_spurts_deterministic() {
        let a: Vec<i32> = TalkSpurtSource::telephone(1).generate(1000);
        let b: Vec<i32> = TalkSpurtSource::telephone(1).generate(1000);
        let c: Vec<i32> = TalkSpurtSource::telephone(2).generate(1000);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "block length must be positive")]
    fn zero_block_len_rejected() {
        SilenceDetector::telephone().classify_stream(&[1, 2, 3], 0);
    }
}
