//! Media substrate: formats, synthetic codecs, device models, silence
//! detection and workload generation.
//!
//! The 1991 prototype captured NTSC video through UVC compression boards
//! and 8 KB/s audio hardware. This crate replaces that hardware with
//! deterministic synthetic equivalents that expose exactly the quantities
//! the file-system model consumes: frame/sample sizes, recording rates,
//! capture and display durations, and device buffer capacities.
//!
//! * [`VideoFormat`] / [`AudioFormat`] — raw media geometry with presets
//!   matching the paper's hardware (NTSC 480×200×12bpp at 30 fps;
//!   telephone-quality 8 kHz audio) and its extrapolations (HDTV).
//! * [`VideoCodec`] — a seeded synthetic compressor producing fixed- or
//!   variable-rate frame sizes plus encode/decode service times.
//! * [`CaptureDevice`] / [`DisplayDevice`] — the paper's media
//!   peripherals: per-frame capture/display durations and `f` internal
//!   frame buffers, from which storage granularity is derived.
//! * [`silence`] — energy-threshold silence detection over synthetic PCM,
//!   feeding the NULL-hole audio layout of strands.
//! * [`workload`] — deterministic generators for video (scene-structured
//!   sizes) and audio (talk-spurt structure) used by tests, examples and
//!   benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod device;
mod format;
pub mod silence;
pub mod workload;

pub use codec::{CodecTiming, FrameSizeModel, VideoCodec};
pub use device::{CaptureDevice, DisplayDevice, RetrievalArchitecture};
pub use format::{AudioFormat, Medium, VideoFormat};
