//! The structured event taxonomy.
//!
//! Events are plain `Copy` data — ids and durations only, no strings and
//! no references into the emitting layer — so recording one is a memcpy
//! and an event outlives the run that produced it.

use strandfs_units::{Instant, Nanos};

/// Whether a disk operation read or wrote the medium.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessDir {
    /// Medium → host.
    Read,
    /// Host → medium.
    Write,
}

/// Classification of an injected fault outcome (`strandfs-disk::fault`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultClass {
    /// Permanent media error: the sectors are unreadable on every attempt.
    Media,
    /// Transient read error: a later retry may succeed.
    Transient,
    /// Latency spike: the operation completed but took extra time.
    Spike,
    /// Degraded-transfer window: the operation's transfer was slowed.
    Degraded,
    /// Torn write: only a prefix of the written sectors reached the
    /// medium before the failure.
    Torn,
    /// Post-crash access: the device froze at a crash point and refuses
    /// all further operations until power-cycled.
    Crashed,
}

impl FaultClass {
    /// A short stable label for counters and trace names.
    pub fn label(&self) -> &'static str {
        match self {
            FaultClass::Media => "media",
            FaultClass::Transient => "transient",
            FaultClass::Spike => "spike",
            FaultClass::Degraded => "degraded",
            FaultClass::Torn => "torn",
            FaultClass::Crashed => "crashed",
        }
    }
}

/// A degradation-ladder decision taken by the playback simulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DegradeAction {
    /// The block was dropped; a silence/freeze-frame hole is displayed.
    DropBlock,
    /// The stream was revoked through admission control.
    Revoke,
    /// The revoked stream was re-admitted after the fault window cleared.
    Readmit,
}

impl DegradeAction {
    /// A short stable label for counters and trace names.
    pub fn label(&self) -> &'static str {
        match self {
            DegradeAction::DropBlock => "drop",
            DegradeAction::Revoke => "revoke",
            DegradeAction::Readmit => "readmit",
        }
    }
}

/// Which intent record the strand journal persisted (`strandfs-core`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JournalOp {
    /// A recording strand was opened.
    Begin,
    /// A media block append was declared before its data write.
    Append,
    /// A silence hole was declared.
    Silence,
    /// A strand is about to write its on-disk index.
    FinishIntent,
    /// The on-disk index landed; the strand is durable.
    FinishCommit,
    /// A strand was deleted.
    Delete,
    /// A checkpoint (catalog + journal floor) was written.
    Checkpoint,
}

impl JournalOp {
    /// A short stable label for counters and trace names.
    pub fn label(&self) -> &'static str {
        match self {
            JournalOp::Begin => "begin",
            JournalOp::Append => "append",
            JournalOp::Silence => "silence",
            JournalOp::FinishIntent => "finish_intent",
            JournalOp::FinishCommit => "finish_commit",
            JournalOp::Delete => "delete",
            JournalOp::Checkpoint => "checkpoint",
        }
    }
}

/// A structural fix applied by fsck's repair mode (`strandfs-core`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RepairAction {
    /// A strand was truncated to its last intact block.
    TruncateStrand,
    /// An allocated-but-unreachable extent was returned to free space.
    ReleaseExtent,
    /// A rope edit-log reference was rebuilt against a shorter strand.
    RopeRef,
}

impl RepairAction {
    /// A short stable label for counters and trace names.
    pub fn label(&self) -> &'static str {
        match self {
            RepairAction::TruncateStrand => "truncate_strand",
            RepairAction::ReleaseExtent => "release_extent",
            RepairAction::RopeRef => "rope_ref",
        }
    }
}

/// One structured observability event.
///
/// The taxonomy mirrors the layers of the stack: `DiskOp` and `Fault`
/// from the disk simulator, `Alloc` from the storage manager's placement
/// decisions, `Retry` from the storage manager's resilient read path,
/// `Admit`/`Reject`/`Release` from the admission controller, and
/// `RoundStart`/`StreamService`/`RoundEnd`/`DisplayStart`/`Deadline`/
/// `Degrade` from the playback simulator.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Event {
    /// One disk operation, fully decomposed (`strandfs-disk`).
    DiskOp {
        /// Read or write.
        dir: AccessDir,
        /// First sector accessed.
        lba: u64,
        /// Sectors transferred.
        sectors: u64,
        /// Cylinder the operation landed on.
        cylinder: u64,
        /// Cylinders the arm travelled to get there.
        cyl_distance: u64,
        /// Issue instant.
        issued: Instant,
        /// Arm movement time.
        seek: Nanos,
        /// Rotational latency.
        rotation: Nanos,
        /// Media transfer time (head/track switches included).
        transfer: Nanos,
    },
    /// One block-placement decision (`Msm::append_block`).
    Alloc {
        /// The strand being recorded.
        strand: u64,
        /// The block number placed.
        block: u64,
        /// Where it landed.
        lba: u64,
        /// Its size in sectors.
        sectors: u64,
        /// Gap to the previous block in sectors; `None` for a strand's
        /// first block (no predecessor) or a wrap-around placement
        /// (the gap constraint was deliberately broken — an anomaly).
        gap: Option<u64>,
        /// Remaining room below the scattering upper bound
        /// (`max_sectors − gap`); `None` when `gap` is.
        slack: Option<u64>,
    },
    /// A request was admitted (Eq. 18 test passed).
    Admit {
        /// The admitted request.
        request: u64,
        /// Requests in service after admission.
        n: usize,
        /// Round size before.
        k_old: u64,
        /// Round size after.
        k_new: u64,
        /// Eq. 18 slack at decision time: `k·γ − (n·α + n·k·β)` for the
        /// new `(n, k)` — how much round-time headroom the admitted set
        /// retains (≥ 0 by construction).
        slack: Nanos,
    },
    /// A request was rejected (`γ ≤ n·β`: no feasible round size).
    Reject {
        /// The rejected request.
        request: u64,
        /// Requests already in service.
        active: usize,
        /// Capacity bound `n_max` at rejection time.
        n_max: usize,
    },
    /// A request left service.
    Release {
        /// The departing request.
        request: u64,
        /// Requests remaining.
        n: usize,
        /// Recomputed round size (0 when idle).
        k: u64,
    },
    /// A service round began (`strandfs-sim`).
    RoundStart {
        /// Round number (0-based).
        round: u64,
        /// Streams serviced this round.
        active: usize,
        /// Blocks per stream this round (the paper's `k`).
        k: u64,
        /// Virtual time at round start.
        at: Instant,
    },
    /// One stream's service turn within a round finished: the server
    /// transferred `blocks` schedule items for `stream` between `begin`
    /// and `end` of round `round` (`strandfs-sim`). Carrying both
    /// instants in one event keeps it `Copy` and self-contained — a
    /// trace builder needs no pairing state to reconstruct the slice.
    StreamService {
        /// Stream index (report order).
        stream: usize,
        /// The round this turn belongs to.
        round: u64,
        /// Virtual time when the server switched to this stream.
        begin: Instant,
        /// Virtual time when the last of its fetches completed.
        end: Instant,
        /// Schedule items advanced this turn (silence included).
        blocks: u64,
    },
    /// A service round finished: every active stream was serviced
    /// (`strandfs-sim`). Paired with the matching [`Event::RoundStart`],
    /// this bounds the round's duration slice exactly — including the
    /// final round, which no successor start would otherwise close.
    RoundEnd {
        /// Round number (0-based).
        round: u64,
        /// Virtual time at round end.
        at: Instant,
    },
    /// A service round passed with no stream to service — every admitted
    /// stream was revoked and the server sat out the round waiting for
    /// readmission (`strandfs-sim`). The virtual clock still advances by
    /// the idle round's playback duration; `advanced` is that span, so
    /// outage accounting (`recovery_time`) can be cross-checked against
    /// the idle rounds that produced it.
    RoundIdle {
        /// Round number (0-based).
        round: u64,
        /// Virtual time at the start of the idle round.
        at: Instant,
        /// How far the clock moved across the idle round.
        advanced: Nanos,
    },
    /// A stream's display clock started (read-ahead satisfied).
    DisplayStart {
        /// Stream index (report order).
        stream: usize,
        /// Virtual display-start instant.
        at: Instant,
        /// Time-to-first-frame: how long the viewer waited between the
        /// epoch entering service (admission for the first epoch,
        /// re-admission for later ones) and this display start.
        latency: Nanos,
    },
    /// Deadline outcome of one scheduled item, emitted once its fetch
    /// completion and display start are both known.
    Deadline {
        /// Stream index (report order).
        stream: usize,
        /// Item index within the stream's schedule.
        item: u64,
        /// The round whose service fetched the item.
        round: u64,
        /// The playback deadline.
        deadline: Instant,
        /// When the fetch completed.
        completed: Instant,
    },
    /// A fault outcome on one disk operation (`strandfs-disk::fault`).
    Fault {
        /// What went wrong (or was slowed down).
        class: FaultClass,
        /// Whether the faulted access was a read or a write.
        dir: AccessDir,
        /// First sector of the affected access.
        lba: u64,
        /// Sectors in the affected access.
        sectors: u64,
        /// When the operation was issued.
        issued: Instant,
        /// When the fault was detected (the failed attempt's completion)
        /// or, for spikes and degraded windows, when the slowed operation
        /// completed.
        detected: Instant,
        /// Service time charged to the fault: the full wasted attempt for
        /// media/transient errors, the extra latency for spikes and
        /// degraded-transfer windows.
        penalty: Nanos,
    },
    /// A retry of a faulted read within the continuity budget
    /// (`strandfs-core`, MSM resilient read path).
    Retry {
        /// The strand being read.
        strand: u64,
        /// The block number being read.
        block: u64,
        /// Retry attempt number (1 = first retry).
        attempt: u32,
        /// Virtual time the retry was issued.
        at: Instant,
        /// Eq. 18 retry budget remaining when the retry was issued.
        budget: Nanos,
    },
    /// One intent record persisted by the strand journal
    /// (`strandfs-core`, recording write path).
    Journal {
        /// The strand the record concerns (0 for checkpoints).
        strand: u64,
        /// Which record type was written.
        op: JournalOp,
        /// The record's monotonic sequence number.
        seq: u64,
        /// Virtual time the journal write was issued.
        at: Instant,
    },
    /// A mount-time journal replay finished (`Msm::recover`).
    Recover {
        /// Strands restored from the durable catalog.
        durable: u64,
        /// In-flight recordings completed from their journal records.
        completed: u64,
        /// Media blocks whose payloads survived and were re-adopted.
        blocks_recovered: u64,
        /// Journaled appends rolled back (torn or never written).
        blocks_rolled_back: u64,
        /// Virtual time recovery finished.
        at: Instant,
    },
    /// One edit boundary healed by the scattering-maintenance pass
    /// (§4.2, Eqs. 19–20): the MSM copied `copied` blocks into a fresh
    /// bridging strand to ramp the boundary gap back into bounds
    /// (`strandfs-core`, MRS edit commit path).
    EditHeal {
        /// The rope whose edit created the boundary.
        rope: u64,
        /// Media blocks copied into the bridging strand.
        copied: u64,
        /// The Eq. 19/20 copy bound in force when the plan was made;
        /// `copied` never exceeds it.
        bound: u64,
        /// The freshly-created bridging strand.
        new_strand: u64,
        /// Virtual time of the heal.
        at: Instant,
    },
    /// One structural fix applied by fsck's repair mode.
    Repair {
        /// Which repair rule fired.
        action: RepairAction,
        /// The strand (or rope, for `RopeRef`) repaired.
        strand: u64,
        /// Rule-specific magnitude: blocks dropped, sectors released, or
        /// units clamped.
        detail: u64,
        /// Virtual time of the repair.
        at: Instant,
    },
    /// A degradation-ladder decision (`strandfs-sim`).
    Degrade {
        /// Stream index (report order).
        stream: usize,
        /// The round in which the decision was taken.
        round: u64,
        /// The schedule item that triggered it (for `Revoke`/`Readmit`,
        /// the next item the stream would have fetched).
        item: u64,
        /// Which rung of the ladder fired.
        action: DegradeAction,
        /// Virtual time of the decision.
        at: Instant,
    },
    /// One background-scrub verification of a stored media block
    /// (`strandfs-cluster`): during idle rounds or spare round slack the
    /// scrubber re-hashed the block's on-disk payload against the
    /// checksum stamped in its strand index.
    Scrub {
        /// The member volume scrubbed.
        volume: usize,
        /// The strand holding the block.
        strand: u64,
        /// The block verified.
        block: u64,
        /// False when the hash did not match the stamp — silent
        /// corruption found; the replica is routed to re-replication.
        ok: bool,
        /// Virtual time the scrub read completed.
        at: Instant,
    },
    /// A hedged read (`strandfs-cluster`): a primary fetch exceeded the
    /// deadline-derived hedge threshold, so the same block was raced on
    /// a replica volume.
    Hedge {
        /// The stream whose fetch was hedged.
        stream: usize,
        /// The slow primary volume.
        volume: usize,
        /// The replica volume raced against it.
        hedge_volume: usize,
        /// Primary service time that tripped the threshold.
        primary: Nanos,
        /// True when the hedge finished first (the stream re-pins to
        /// the replica).
        won: bool,
        /// Virtual time the winning fetch completed.
        at: Instant,
    },
    /// A read-latency quarantine transition (`strandfs-cluster`): a
    /// member breached the latency SLO (entered) or served clean probes
    /// long enough to be re-admitted (left).
    Quarantine {
        /// The member volume.
        volume: usize,
        /// True on entry to quarantine, false on re-admission.
        entered: bool,
        /// Consecutive slow (entry) or clean-probe (exit) rounds that
        /// triggered the transition.
        rounds: u64,
        /// Virtual time of the transition.
        at: Instant,
    },
}

impl Event {
    /// For a [`Event::DiskOp`], the total service time; zero otherwise.
    pub fn service_time(&self) -> Nanos {
        match self {
            Event::DiskOp {
                seek,
                rotation,
                transfer,
                ..
            } => *seek + *rotation + *transfer,
            _ => Nanos::ZERO,
        }
    }

    /// For a [`Event::Deadline`], the signed margin in nanoseconds
    /// (positive = early, negative = late); zero otherwise.
    pub fn deadline_margin(&self) -> i64 {
        match self {
            Event::Deadline {
                deadline,
                completed,
                ..
            } => {
                if completed <= deadline {
                    (*deadline - *completed).as_nanos() as i64
                } else {
                    -((*completed - *deadline).as_nanos() as i64)
                }
            }
            _ => 0,
        }
    }

    /// The virtual instant the event is anchored to, when it carries
    /// one: issue time for disk ops, detection time for faults,
    /// completion time for deadlines and service turns, and the `at`
    /// stamp everywhere else. Admission decisions and allocations are
    /// instant-less (`None`) — time-windowed consumers fold them into
    /// whichever window is current when they arrive.
    pub fn at(&self) -> Option<Instant> {
        match *self {
            Event::DiskOp { issued, .. } => Some(issued),
            Event::Alloc { .. }
            | Event::Admit { .. }
            | Event::Reject { .. }
            | Event::Release { .. } => None,
            Event::RoundStart { at, .. }
            | Event::RoundEnd { at, .. }
            | Event::RoundIdle { at, .. }
            | Event::DisplayStart { at, .. }
            | Event::Retry { at, .. }
            | Event::Journal { at, .. }
            | Event::Recover { at, .. }
            | Event::EditHeal { at, .. }
            | Event::Repair { at, .. }
            | Event::Degrade { at, .. }
            | Event::Scrub { at, .. }
            | Event::Hedge { at, .. }
            | Event::Quarantine { at, .. } => Some(at),
            Event::StreamService { end, .. } => Some(end),
            Event::Deadline { completed, .. } => Some(completed),
            Event::Fault { detected, .. } => Some(detected),
        }
    }

    /// A short stable label for counters and JSON keys.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::DiskOp { .. } => "disk_op",
            Event::Alloc { .. } => "alloc",
            Event::Admit { .. } => "admit",
            Event::Reject { .. } => "reject",
            Event::Release { .. } => "release",
            Event::RoundStart { .. } => "round_start",
            Event::StreamService { .. } => "stream_service",
            Event::RoundEnd { .. } => "round_end",
            Event::RoundIdle { .. } => "round_idle",
            Event::DisplayStart { .. } => "display_start",
            Event::Deadline { .. } => "deadline",
            Event::Fault { .. } => "fault",
            Event::Retry { .. } => "retry",
            Event::Degrade { .. } => "degrade",
            Event::Journal { .. } => "journal",
            Event::Recover { .. } => "recover",
            Event::EditHeal { .. } => "edit_heal",
            Event::Repair { .. } => "repair",
            Event::Scrub { .. } => "scrub",
            Event::Hedge { .. } => "hedge",
            Event::Quarantine { .. } => "quarantine",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_time_sums_components() {
        let e = Event::DiskOp {
            dir: AccessDir::Read,
            lba: 0,
            sectors: 1,
            cylinder: 0,
            cyl_distance: 0,
            issued: Instant::EPOCH,
            seek: Nanos::from_millis(3),
            rotation: Nanos::from_millis(2),
            transfer: Nanos::from_millis(1),
        };
        assert_eq!(e.service_time(), Nanos::from_millis(6));
        assert_eq!(e.kind(), "disk_op");
    }

    #[test]
    fn at_anchors_timed_events_only() {
        let admit = Event::Admit {
            request: 1,
            n: 1,
            k_old: 0,
            k_new: 2,
            slack: Nanos::from_millis(5),
        };
        assert_eq!(admit.at(), None);
        let start = Event::DisplayStart {
            stream: 0,
            at: Instant::from_nanos(70),
            latency: Nanos::from_nanos(70),
        };
        assert_eq!(start.at(), Some(Instant::from_nanos(70)));
        let dl = Event::Deadline {
            stream: 0,
            item: 0,
            round: 0,
            deadline: Instant::from_nanos(100),
            completed: Instant::from_nanos(60),
        };
        assert_eq!(dl.at(), Some(Instant::from_nanos(60)));
    }

    #[test]
    fn deadline_margin_is_signed() {
        let early = Event::Deadline {
            stream: 0,
            item: 0,
            round: 0,
            deadline: Instant::from_nanos(100),
            completed: Instant::from_nanos(60),
        };
        assert_eq!(early.deadline_margin(), 40);
        let late = Event::Deadline {
            stream: 0,
            item: 1,
            round: 1,
            deadline: Instant::from_nanos(100),
            completed: Instant::from_nanos(250),
        };
        assert_eq!(late.deadline_margin(), -150);
        assert_eq!(
            Event::Release {
                request: 0,
                n: 0,
                k: 0
            }
            .deadline_margin(),
            0
        );
    }
}
