//! Windowed live health monitoring with an anomaly-triggered flight
//! recorder.
//!
//! The cumulative [`crate::ObsMetrics`] answer "how did the whole run
//! go"; a 2-second outage inside a 10-minute run vanishes into the
//! averages, and a full raw trace of 100k streams does not fit in
//! memory. [`WindowedMonitor`] closes that gap: it folds the same event
//! stream into fixed-width virtual-time windows — round-indexed or
//! time-indexed — each summarised by O(1)-size [`WindowStats`]
//! (miss rate, margin quantiles via the mergeable
//! [`QuantileSketch`], disk utilization, live Eq. 18 slack, fault and
//! degradation rates, admission churn). Closed windows are retained as
//! a bounded series, declarative [`SloRule`]s are evaluated at every
//! window close, and the first breach of each rule snapshots the raw
//! event ring plus the surrounding window series into a self-contained
//! [`FlightDump`] — black-box tracing that still works at a scale where
//! whole-run traces cannot.

use std::collections::VecDeque;

use strandfs_units::{Instant, Nanos};

use crate::alert::{Alert, SloRule};
use crate::event::Event;
use crate::recorder::Recorder;
use crate::sketch::QuantileSketch;

/// The pre-anomaly buffer behind the flight recorder: the last `cap`
/// raw events, oldest dropped and counted. Unlike [`crate::RingRecorder`]
/// it folds nothing — the monitor's windowed fold already summarises the
/// stream, so the ring only has to be a cheap bounded copy (this is on
/// the per-event hot path of a 100k-stream run).
#[derive(Debug)]
struct FlightRing {
    cap: usize,
    ring: VecDeque<Event>,
    dropped: u64,
}

impl FlightRing {
    fn new(cap: usize) -> FlightRing {
        FlightRing {
            cap,
            ring: VecDeque::with_capacity(cap),
            dropped: 0,
        }
    }

    #[inline]
    fn record(&mut self, event: Event) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }
}

/// How wide one monitoring window is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowWidth {
    /// One window per `n` service rounds (round-indexed: window =
    /// `round / n`). Natural for the paper's round-driven service loop.
    Rounds(u64),
    /// One window per span of virtual time (time-indexed: window =
    /// `at / width`, half-open `[i·width, (i+1)·width)`).
    Time(Nanos),
}

impl WindowWidth {
    fn label(&self) -> &'static str {
        match self {
            WindowWidth::Rounds(_) => "rounds",
            WindowWidth::Time(_) => "time",
        }
    }

    fn span(&self) -> u64 {
        match *self {
            WindowWidth::Rounds(n) => n.max(1),
            WindowWidth::Time(w) => w.as_nanos().max(1),
        }
    }
}

/// Configuration for a [`WindowedMonitor`].
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Window width (round- or time-indexed).
    pub width: WindowWidth,
    /// Closed windows retained in the series (older ones are evicted
    /// but stay counted).
    pub retain: usize,
    /// Raw-event ring capacity backing the flight recorder.
    pub ring_cap: usize,
    /// SLO rules evaluated at every window close.
    pub rules: Vec<SloRule>,
    /// Flight dumps captured at most this many times (first alerts
    /// win; later alerts are still recorded, just not dumped).
    pub max_dumps: usize,
}

impl MonitorConfig {
    /// Round-indexed windows of `rounds` service rounds each.
    pub fn rounds(rounds: u64) -> MonitorConfig {
        MonitorConfig {
            width: WindowWidth::Rounds(rounds),
            retain: 256,
            ring_cap: 4096,
            rules: Vec::new(),
            max_dumps: 1,
        }
    }

    /// Time-indexed windows of `width` virtual time each.
    pub fn time(width: Nanos) -> MonitorConfig {
        MonitorConfig {
            width: WindowWidth::Time(width),
            ..MonitorConfig::rounds(1)
        }
    }

    /// Keep at most `n` closed windows in the series.
    pub fn retain(mut self, n: usize) -> MonitorConfig {
        self.retain = n.max(1);
        self
    }

    /// Size the flight-recorder event ring.
    pub fn ring_cap(mut self, cap: usize) -> MonitorConfig {
        self.ring_cap = cap;
        self
    }

    /// Add one SLO rule.
    pub fn rule(mut self, rule: SloRule) -> MonitorConfig {
        self.rules.push(rule);
        self
    }

    /// Capture at most `n` flight dumps.
    pub fn max_dumps(mut self, n: usize) -> MonitorConfig {
        self.max_dumps = n;
        self
    }
}

/// O(1)-size health summary of one window.
#[derive(Clone, Debug)]
pub struct WindowStats {
    /// Window index (`round / width` or `at / width`).
    pub index: u64,
    /// Events folded into this window.
    pub events: u64,
    /// First round id seen in the window, if any round event arrived.
    pub start_round: Option<u64>,
    /// Last round id seen in the window.
    pub end_round: Option<u64>,
    /// Instant of the first anchored event folded in.
    pub first_at: Option<Instant>,
    /// Instant of the last anchored event folded in.
    pub last_at: Option<Instant>,
    /// Service rounds started in the window.
    pub rounds: u64,
    /// Idle rounds (nothing serviceable) in the window.
    pub idle_rounds: u64,
    /// Deadline outcomes observed.
    pub deadline_blocks: u64,
    /// Deadline outcomes that were late.
    pub deadline_late: u64,
    /// Signed deadline margins (ns; negative = late).
    pub margins: QuantileSketch,
    /// Disk operations issued.
    pub disk_ops: u64,
    /// Disk service time consumed (seek + rotation + transfer).
    pub disk_busy: Nanos,
    /// Live Eq. 18 slack: the last admission's slack observed at or
    /// before this window (carried forward across windows with no
    /// admission activity; `None` until the first admission).
    pub slack: Option<Nanos>,
    /// Fault events (any class).
    pub faults: u64,
    /// Read retries issued.
    pub retries: u64,
    /// Blocks dropped by the degradation ladder.
    pub drops: u64,
    /// Streams revoked.
    pub revokes: u64,
    /// Revoked streams re-admitted.
    pub readmits: u64,
    /// Requests admitted.
    pub admits: u64,
    /// Requests rejected.
    pub rejects: u64,
    /// Requests released.
    pub releases: u64,
    /// Display-clock starts (stream epochs satisfying read-ahead).
    pub display_starts: u64,
    /// Blocks verified by the background scrubber.
    pub scrubbed: u64,
    /// Scrubbed blocks whose checksum did not match.
    pub scrub_corrupt: u64,
    /// Hedged reads issued against a slow primary.
    pub hedges: u64,
    /// Hedged reads the replica won.
    pub hedge_wins: u64,
    /// Volumes quarantined for breaching the latency SLO.
    pub quarantines: u64,
}

impl WindowStats {
    fn fresh(index: u64, slack: Option<Nanos>) -> WindowStats {
        WindowStats {
            index,
            events: 0,
            start_round: None,
            end_round: None,
            first_at: None,
            last_at: None,
            rounds: 0,
            idle_rounds: 0,
            deadline_blocks: 0,
            deadline_late: 0,
            margins: QuantileSketch::new(),
            disk_ops: 0,
            disk_busy: Nanos::ZERO,
            slack,
            faults: 0,
            retries: 0,
            drops: 0,
            revokes: 0,
            readmits: 0,
            admits: 0,
            rejects: 0,
            releases: 0,
            display_starts: 0,
            scrubbed: 0,
            scrub_corrupt: 0,
            hedges: 0,
            hedge_wins: 0,
            quarantines: 0,
        }
    }

    /// Deadline miss rate in the window (0.0 when no deadlines).
    pub fn miss_rate(&self) -> f64 {
        if self.deadline_blocks == 0 {
            0.0
        } else {
            self.deadline_late as f64 / self.deadline_blocks as f64
        }
    }

    /// Disk utilization over the observed span of the window: service
    /// time consumed divided by first-to-last event time (0.0 when the
    /// span is degenerate).
    pub fn utilization(&self) -> f64 {
        match (self.first_at, self.last_at) {
            (Some(a), Some(b)) if b > a => {
                self.disk_busy.as_nanos() as f64 / (b - a).as_nanos() as f64
            }
            _ => 0.0,
        }
    }

    fn fold(&mut self, event: &Event) {
        self.events += 1;
        if let Some(at) = event.at() {
            if self.first_at.is_none() {
                self.first_at = Some(at);
            }
            self.last_at = Some(at);
        }
        match *event {
            Event::DiskOp {
                seek,
                rotation,
                transfer,
                ..
            } => {
                self.disk_ops += 1;
                self.disk_busy += seek + rotation + transfer;
            }
            Event::RoundStart { round, .. } => {
                self.rounds += 1;
                self.note_round(round);
            }
            Event::RoundIdle { round, .. } => {
                self.idle_rounds += 1;
                self.note_round(round);
            }
            Event::RoundEnd { round, .. } => self.note_round(round),
            Event::Deadline { .. } => {
                self.deadline_blocks += 1;
                let margin = event.deadline_margin();
                if margin < 0 {
                    self.deadline_late += 1;
                }
                self.margins.record(margin);
            }
            Event::Admit { slack, .. } => {
                self.admits += 1;
                self.slack = Some(slack);
            }
            Event::Reject { .. } => self.rejects += 1,
            Event::Release { .. } => self.releases += 1,
            Event::Fault { .. } => self.faults += 1,
            Event::Retry { .. } => self.retries += 1,
            Event::Degrade { action, .. } => match action {
                crate::event::DegradeAction::DropBlock => self.drops += 1,
                crate::event::DegradeAction::Revoke => self.revokes += 1,
                crate::event::DegradeAction::Readmit => self.readmits += 1,
            },
            Event::DisplayStart { .. } => self.display_starts += 1,
            Event::Scrub { ok, .. } => {
                self.scrubbed += 1;
                if !ok {
                    self.scrub_corrupt += 1;
                }
            }
            Event::Hedge { won, .. } => {
                self.hedges += 1;
                if won {
                    self.hedge_wins += 1;
                }
            }
            Event::Quarantine { entered: true, .. } => self.quarantines += 1,
            _ => {}
        }
    }

    fn note_round(&mut self, round: u64) {
        if self.start_round.is_none() {
            self.start_round = Some(round);
        }
        self.end_round = Some(round);
    }

    /// The window as a hand-rolled JSON object.
    pub fn to_json(&self) -> String {
        let opt_u64 = |v: Option<u64>| match v {
            Some(n) => n.to_string(),
            None => "null".into(),
        };
        format!(
            concat!(
                "{{\"index\":{},\"events\":{},",
                "\"start_round\":{},\"end_round\":{},",
                "\"first_at_ns\":{},\"last_at_ns\":{},",
                "\"rounds\":{},\"idle_rounds\":{},",
                "\"blocks\":{},\"late\":{},\"miss_rate\":{:.6},",
                "\"margin_min_ns\":{},\"margin_p1_ns\":{},\"margin_p50_ns\":{},",
                "\"disk_ops\":{},\"disk_busy_ns\":{},\"utilization\":{:.6},",
                "\"slack_ns\":{},",
                "\"faults\":{},\"retries\":{},\"drops\":{},\"revokes\":{},\"readmits\":{},",
                "\"admits\":{},\"rejects\":{},\"releases\":{},\"display_starts\":{},",
                "\"scrubbed\":{},\"scrub_corrupt\":{},",
                "\"hedges\":{},\"hedge_wins\":{},\"quarantines\":{}}}"
            ),
            self.index,
            self.events,
            opt_u64(self.start_round),
            opt_u64(self.end_round),
            opt_u64(self.first_at.map(|t| t.as_nanos())),
            opt_u64(self.last_at.map(|t| t.as_nanos())),
            self.rounds,
            self.idle_rounds,
            self.deadline_blocks,
            self.deadline_late,
            self.miss_rate(),
            self.margins.min(),
            self.margins.quantile(0.01),
            self.margins.quantile(0.50),
            self.disk_ops,
            self.disk_busy.as_nanos(),
            self.utilization(),
            opt_u64(self.slack.map(|s| s.as_nanos())),
            self.faults,
            self.retries,
            self.drops,
            self.revokes,
            self.readmits,
            self.admits,
            self.rejects,
            self.releases,
            self.display_starts,
            self.scrubbed,
            self.scrub_corrupt,
            self.hedges,
            self.hedge_wins,
            self.quarantines,
        )
    }
}

/// A self-contained black-box snapshot captured when an alert fires:
/// the raw-event ring at that moment plus the retained window series
/// (the offending window last). `strandfs-trace` renders it as a
/// Perfetto-loadable excerpt of just the anomalous span.
#[derive(Clone, Debug)]
pub struct FlightDump {
    /// The alert that triggered the capture.
    pub alert: Alert,
    /// The window series at capture time, oldest first; the final
    /// entry is the window whose close fired the rule.
    pub windows: Vec<WindowStats>,
    /// The raw events retained in the flight ring, oldest first.
    pub events: Vec<Event>,
    /// Events the ring had evicted before capture (the excerpt's
    /// prefix is truncated when this is non-zero).
    pub dropped: u64,
}

impl FlightDump {
    /// The virtual-time span covered by the captured raw events.
    pub fn span(&self) -> Option<(Instant, Instant)> {
        let mut anchored = self.events.iter().filter_map(|e| e.at());
        let first = anchored.next()?;
        let last = anchored.next_back().unwrap_or(first);
        Some((first, last))
    }

    /// The round-id range covered by the captured raw events.
    pub fn rounds_covered(&self) -> Option<(u64, u64)> {
        let mut range: Option<(u64, u64)> = None;
        for e in &self.events {
            let round = match *e {
                Event::RoundStart { round, .. }
                | Event::RoundEnd { round, .. }
                | Event::RoundIdle { round, .. } => round,
                _ => continue,
            };
            range = Some(match range {
                Some((lo, hi)) => (lo.min(round), hi.max(round)),
                None => (round, round),
            });
        }
        range
    }

    /// Summary JSON (the raw events themselves are rendered by
    /// `strandfs-trace`, not serialized here).
    pub fn to_json(&self) -> String {
        let span = self.span();
        let rounds = self.rounds_covered();
        let opt = |v: Option<u64>| match v {
            Some(n) => n.to_string(),
            None => "null".into(),
        };
        format!(
            concat!(
                "{{\"alert\":{},\"windows\":{},\"events\":{},\"dropped\":{},",
                "\"span_begin_ns\":{},\"span_end_ns\":{},",
                "\"first_round\":{},\"last_round\":{}}}"
            ),
            self.alert.to_json(),
            self.windows.len(),
            self.events.len(),
            self.dropped,
            opt(span.map(|(a, _)| a.as_nanos())),
            opt(span.map(|(_, b)| b.as_nanos())),
            opt(rounds.map(|(a, _)| a)),
            opt(rounds.map(|(_, b)| b)),
        )
    }
}

/// A [`Recorder`] that folds the event stream into fixed-width windows
/// with O(1) memory per window, evaluates SLO rules at window close,
/// and captures flight dumps on alert.
#[derive(Debug)]
pub struct WindowedMonitor {
    width: WindowWidth,
    retain: usize,
    rules: Vec<SloRule>,
    /// Edge-trigger latches, one per rule: a latched rule re-arms only
    /// after a window in which its condition is false.
    latched: Vec<bool>,
    max_dumps: usize,
    ring: FlightRing,
    cur: WindowStats,
    series: VecDeque<WindowStats>,
    /// Closed windows evicted from the bounded series.
    evicted: u64,
    /// Windows closed so far (including evicted and fast-forwarded).
    closed: u64,
    last_slack: Option<Nanos>,
    alerts: Vec<Alert>,
    dumps: Vec<FlightDump>,
    finished: bool,
}

impl WindowedMonitor {
    /// A monitor per `config`.
    pub fn new(config: MonitorConfig) -> WindowedMonitor {
        let latched = vec![false; config.rules.len()];
        WindowedMonitor {
            width: config.width,
            retain: config.retain.max(1),
            rules: config.rules,
            latched,
            max_dumps: config.max_dumps,
            ring: FlightRing::new(config.ring_cap),
            cur: WindowStats::fresh(0, None),
            series: VecDeque::new(),
            evicted: 0,
            closed: 0,
            last_slack: None,
            alerts: Vec::new(),
            dumps: Vec::new(),
            finished: false,
        }
    }

    /// The closed-window series, oldest first (bounded by `retain`).
    pub fn windows(&self) -> impl Iterator<Item = &WindowStats> {
        self.series.iter()
    }

    /// The window currently being filled.
    pub fn current(&self) -> &WindowStats {
        &self.cur
    }

    /// All alerts raised so far, in firing order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Flight dumps captured so far (≤ `max_dumps`).
    pub fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    /// Windows closed so far (evicted ones included).
    pub fn closed(&self) -> u64 {
        self.closed
    }

    /// Closed windows evicted from the bounded series.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Close the final partial window (if it holds any events) and
    /// stop accepting input. Idempotent.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        if self.cur.events > 0 {
            self.close_current();
        }
        self.finished = true;
    }

    /// Which window the event belongs to, when it is anchored: round
    /// events index by round id in `Rounds` mode, anchored events index
    /// by instant in `Time` mode. Unanchored events (and round-less
    /// events in `Rounds` mode) fold into the current window.
    fn target_window(&self, event: &Event) -> Option<u64> {
        match self.width {
            WindowWidth::Rounds(w) => match *event {
                Event::RoundStart { round, .. } | Event::RoundIdle { round, .. } => {
                    Some(round / w.max(1))
                }
                _ => None,
            },
            WindowWidth::Time(w) => event.at().map(|t| t.as_nanos() / w.as_nanos().max(1)),
        }
    }

    /// Advance the current window to `target`, closing every window in
    /// between. A gap wider than the retained series fast-forwards: the
    /// intermediate empty windows would all be evicted anyway, so one
    /// representative empty window is closed (which re-arms edge
    /// triggers) and the rest are counted without being materialized.
    fn seek_window(&mut self, target: u64) {
        if target <= self.cur.index {
            return;
        }
        let max_steps = self.retain as u64 + 1;
        if target - self.cur.index > max_steps {
            // Close the live window plus one empty successor, then jump.
            self.close_current();
            self.close_current();
            let skipped = target - self.cur.index;
            self.closed += skipped;
            self.evicted += skipped;
            self.cur.index = target;
        }
        while self.cur.index < target {
            self.close_current();
        }
    }

    /// Close `cur`: evaluate rules, capture dumps, push into the
    /// bounded series, open the successor window.
    fn close_current(&mut self) {
        let history: Vec<&WindowStats> = self.series.iter().collect();
        let mut fired: Vec<Alert> = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            match rule.check(&history, &self.cur) {
                Some((value, threshold)) => {
                    if !self.latched[i] {
                        self.latched[i] = true;
                        fired.push(Alert {
                            rule: rule.label(),
                            kind: rule.kind(),
                            window: self.cur.index,
                            at: self.cur.last_at.unwrap_or(Instant::EPOCH),
                            value,
                            threshold,
                        });
                    }
                }
                None => self.latched[i] = false,
            }
        }
        for alert in fired {
            if self.dumps.len() < self.max_dumps {
                let mut windows: Vec<WindowStats> = self.series.iter().cloned().collect();
                windows.push(self.cur.clone());
                self.dumps.push(FlightDump {
                    alert,
                    windows,
                    events: self.ring.ring.iter().copied().collect(),
                    dropped: self.ring.dropped,
                });
            }
            self.alerts.push(alert);
        }
        let next = WindowStats::fresh(self.cur.index + 1, self.last_slack);
        let closed = std::mem::replace(&mut self.cur, next);
        self.series.push_back(closed);
        if self.series.len() > self.retain {
            self.series.pop_front();
            self.evicted += 1;
        }
        self.closed += 1;
    }

    /// The monitor state as a hand-rolled JSON object.
    pub fn to_json(&self) -> String {
        let windows: Vec<String> = self.series.iter().map(|w| w.to_json()).collect();
        let alerts: Vec<String> = self.alerts.iter().map(|a| a.to_json()).collect();
        let dumps: Vec<String> = self.dumps.iter().map(|d| d.to_json()).collect();
        format!(
            concat!(
                "{{\"mode\":\"{}\",\"width\":{},\"closed\":{},\"evicted\":{},",
                "\"ring_dropped\":{},",
                "\"windows\":[{}],\"alerts\":[{}],\"dumps\":[{}]}}"
            ),
            self.width.label(),
            self.width.span(),
            self.closed,
            self.evicted,
            self.ring.dropped,
            windows.join(","),
            alerts.join(","),
            dumps.join(","),
        )
    }
}

impl Recorder for WindowedMonitor {
    fn record(&mut self, event: Event) {
        if self.finished {
            return;
        }
        if let Some(target) = self.target_window(&event) {
            self.seek_window(target);
        }
        self.cur.fold(&event);
        if let Event::Admit { slack, .. } = event {
            self.last_slack = Some(slack);
        }
        self.ring.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::AccessDir;

    fn round_start(round: u64, at_ns: u64) -> Event {
        Event::RoundStart {
            round,
            active: 1,
            k: 1,
            at: Instant::from_nanos(at_ns),
        }
    }

    fn deadline(at_ns: u64, margin: i64) -> Event {
        let deadline = Instant::from_nanos((at_ns as i64 + margin).max(0) as u64);
        Event::Deadline {
            stream: 0,
            item: 0,
            round: 0,
            deadline,
            completed: Instant::from_nanos(at_ns),
        }
    }

    fn disk_op(at_ns: u64) -> Event {
        Event::DiskOp {
            dir: AccessDir::Read,
            lba: 0,
            sectors: 8,
            cylinder: 0,
            cyl_distance: 0,
            issued: Instant::from_nanos(at_ns),
            seek: Nanos::from_nanos(5),
            rotation: Nanos::from_nanos(3),
            transfer: Nanos::from_nanos(2),
        }
    }

    #[test]
    fn round_windows_split_on_round_index() {
        let mut m = WindowedMonitor::new(MonitorConfig::rounds(2));
        for r in 0..5 {
            m.record(round_start(r, r * 100));
            m.record(deadline(r * 100 + 10, 50));
        }
        m.finish();
        // Rounds 0–1, 2–3 closed; round 4 is the final partial window.
        let windows: Vec<&WindowStats> = m.windows().collect();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].rounds, 2);
        assert_eq!(windows[1].rounds, 2);
        assert_eq!(windows[2].rounds, 1);
        assert_eq!(windows[0].start_round, Some(0));
        assert_eq!(windows[1].start_round, Some(2));
        assert_eq!(windows[2].start_round, Some(4));
        assert_eq!(m.closed(), 3);
    }

    #[test]
    fn time_windows_use_half_open_boundaries() {
        let width = Nanos::from_nanos(100);
        let mut m = WindowedMonitor::new(MonitorConfig::time(width));
        // 99 → window 0; exactly 100 → window 1; 199 → window 1;
        // exactly 200 → window 2.
        m.record(disk_op(99));
        m.record(disk_op(100));
        m.record(disk_op(199));
        m.record(disk_op(200));
        m.finish();
        let windows: Vec<&WindowStats> = m.windows().collect();
        assert_eq!(windows.len(), 3);
        assert_eq!(
            windows.iter().map(|w| w.disk_ops).collect::<Vec<_>>(),
            vec![1, 2, 1]
        );
        assert_eq!(windows[0].index, 0);
        assert_eq!(windows[1].index, 1);
        assert_eq!(windows[2].index, 2);
    }

    #[test]
    fn time_gaps_synthesize_empty_windows() {
        let width = Nanos::from_nanos(10);
        let mut m = WindowedMonitor::new(MonitorConfig::time(width).retain(100));
        m.record(disk_op(5));
        m.record(disk_op(45)); // windows 1–3 are empty
        m.finish();
        let windows: Vec<&WindowStats> = m.windows().collect();
        assert_eq!(windows.len(), 5);
        assert_eq!(
            windows.iter().map(|w| w.events).collect::<Vec<_>>(),
            vec![1, 0, 0, 0, 1]
        );
    }

    #[test]
    fn huge_time_gap_fast_forwards_in_bounded_steps() {
        let width = Nanos::from_nanos(1);
        let mut m = WindowedMonitor::new(MonitorConfig::time(width).retain(4));
        m.record(disk_op(0));
        m.record(disk_op(1_000_000_000)); // a billion empty windows
        m.finish();
        // Series stays bounded, the closed count is exact, and the
        // final event landed in its correct window.
        assert!(m.windows().count() <= 5);
        assert_eq!(m.closed(), 1_000_000_001);
        let last = m.windows().last().unwrap();
        assert_eq!(last.index, 1_000_000_000);
        assert_eq!(last.disk_ops, 1);
    }

    #[test]
    fn series_is_bounded_and_evictions_counted() {
        let mut m = WindowedMonitor::new(MonitorConfig::rounds(1).retain(3));
        for r in 0..10 {
            m.record(round_start(r, r * 100));
        }
        m.finish();
        assert_eq!(m.windows().count(), 3);
        assert_eq!(m.closed(), 10);
        assert_eq!(m.evicted(), 7);
        let indexes: Vec<u64> = m.windows().map(|w| w.index).collect();
        assert_eq!(indexes, vec![7, 8, 9]);
    }

    #[test]
    fn finish_without_events_closes_nothing() {
        let mut m = WindowedMonitor::new(MonitorConfig::rounds(2));
        m.finish();
        assert_eq!(m.windows().count(), 0);
        assert_eq!(m.closed(), 0);
        // Idempotent and inert afterwards.
        m.finish();
        m.record(round_start(0, 0));
        assert_eq!(m.closed(), 0);
    }

    #[test]
    fn slack_carries_forward_across_quiet_windows() {
        let mut m = WindowedMonitor::new(MonitorConfig::rounds(1));
        m.record(round_start(0, 0));
        m.record(Event::Admit {
            request: 1,
            n: 1,
            k_old: 0,
            k_new: 1,
            slack: Nanos::from_millis(7),
        });
        m.record(round_start(1, 100));
        m.record(round_start(2, 200));
        m.finish();
        let windows: Vec<&WindowStats> = m.windows().collect();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].slack, Some(Nanos::from_millis(7)));
        assert_eq!(windows[1].slack, Some(Nanos::from_millis(7)));
        assert_eq!(windows[2].slack, Some(Nanos::from_millis(7)));
    }

    #[test]
    fn burn_rate_alert_fires_once_and_captures_a_dump() {
        let rule = SloRule::BurnRate {
            label: "miss-burn",
            short_windows: 1,
            long_windows: 2,
            short_rate: 0.5,
            long_rate: 0.25,
        };
        let mut m = WindowedMonitor::new(MonitorConfig::rounds(1).rule(rule));
        // Window 0: clean. Windows 1 and 2: fully late.
        m.record(round_start(0, 0));
        m.record(deadline(10, 50));
        m.record(round_start(1, 100));
        m.record(deadline(110, -40));
        m.record(round_start(2, 200));
        m.record(deadline(210, -40));
        m.record(round_start(3, 300));
        m.finish();
        // Edge-triggered: one alert despite two breaching windows.
        assert_eq!(m.alerts().len(), 1);
        let alert = m.alerts()[0];
        assert_eq!(alert.rule, "miss-burn");
        assert_eq!(alert.kind, "burn_rate");
        assert_eq!(alert.window, 1);
        assert_eq!(m.dumps().len(), 1);
        let dump = &m.dumps()[0];
        assert_eq!(dump.alert, alert);
        // The dump holds the offending window last and the raw events
        // covering it.
        assert_eq!(dump.windows.last().unwrap().index, 1);
        assert!(dump.events.len() >= 4);
        assert_eq!(dump.rounds_covered(), Some((0, 1)));
    }

    #[test]
    fn latched_rule_rearms_after_a_clean_window() {
        let rule = SloRule::FaultStorm {
            label: "storm",
            max_faults: 0,
        };
        let mut m = WindowedMonitor::new(MonitorConfig::rounds(1).rule(rule).max_dumps(2));
        let fault = |at: u64| Event::Fault {
            class: crate::event::FaultClass::Transient,
            dir: AccessDir::Read,
            lba: 0,
            sectors: 8,
            issued: Instant::from_nanos(at),
            detected: Instant::from_nanos(at + 1),
            penalty: Nanos::from_nanos(1),
        };
        m.record(round_start(0, 0));
        m.record(fault(10));
        m.record(round_start(1, 100)); // closes window 0 → alert
        m.record(round_start(2, 200)); // closes clean window 1 → re-arm
        m.record(fault(210));
        m.record(round_start(3, 300)); // closes window 2 → second alert
        m.finish();
        assert_eq!(m.alerts().len(), 2);
        assert_eq!(m.alerts()[0].window, 0);
        assert_eq!(m.alerts()[1].window, 2);
        assert_eq!(m.dumps().len(), 2);
    }

    #[test]
    fn volume_slow_rule_fires_on_hedge_burst() {
        let rule = SloRule::VolumeSlow {
            label: "vol-slow",
            max_hedges: 1,
        };
        let mut m = WindowedMonitor::new(MonitorConfig::rounds(1).rule(rule));
        let hedge = |at: u64, won: bool| Event::Hedge {
            stream: 0,
            volume: 0,
            hedge_volume: 1,
            primary: Nanos::from_nanos(500),
            won,
            at: Instant::from_nanos(at),
        };
        m.record(round_start(0, 0));
        m.record(hedge(10, true));
        m.record(round_start(1, 100)); // closes window 0: one hedge, under threshold
        m.record(hedge(110, true));
        m.record(hedge(120, false));
        m.record(round_start(2, 200)); // closes window 1: two hedges → alert
        m.finish();
        assert_eq!(m.alerts().len(), 1);
        let alert = m.alerts()[0];
        assert_eq!(alert.rule, "vol-slow");
        assert_eq!(alert.kind, "volume_slow");
        assert_eq!(alert.window, 1);
        let windows: Vec<&WindowStats> = m.windows().collect();
        assert_eq!(windows[1].hedges, 2);
        assert_eq!(windows[1].hedge_wins, 1);
    }

    #[test]
    fn monitor_json_is_parseable_shape() {
        let mut m = WindowedMonitor::new(MonitorConfig::rounds(1));
        m.record(round_start(0, 0));
        m.record(disk_op(10));
        m.finish();
        let json = m.to_json();
        for key in [
            "\"mode\":\"rounds\"",
            "\"width\":1",
            "\"closed\":1",
            "\"windows\":[",
            "\"alerts\":[]",
            "\"dumps\":[]",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
