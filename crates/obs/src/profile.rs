//! Wall-clock self-profiling for the service loop's hot phases.
//!
//! The scale suite (E16) showed the service loop is dominated by four
//! phases — round bookkeeping, the service-order sort, the admission
//! slack query, and the per-stream service turn — but a wall-clock
//! regression in `sections/scale` names none of them. [`Profiler`]
//! attributes real time to [`Phase`]s so a regression is actionable.
//!
//! The discipline mirrors [`crate::ObsSink`]: a disabled [`ProfSink`]
//! never reads the clock — [`ProfSink::enter`] returns `None` before
//! touching `std::time::Instant`, so uninstrumented runs pay one
//! branch per phase entry and zero timing syscalls. Wall-clock totals
//! are real time, hence nondeterministic; span *counts* are
//! deterministic and are what the bench baseline pins.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use strandfs_units::Nanos;

/// The profiled phases of one service round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Activation, readmit checks, and active-set construction.
    Bookkeeping,
    /// Service-order key construction and sorting (SCAN/CSCAN).
    Sort,
    /// The Eq. 18 slack query that budgets retries for the round.
    Admission,
    /// The per-stream k-block service turns.
    Service,
}

/// All phases, in display order.
pub const PHASES: [Phase; 4] = [
    Phase::Bookkeeping,
    Phase::Sort,
    Phase::Admission,
    Phase::Service,
];

impl Phase {
    /// Stable lowercase label for JSON keys and tables.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Bookkeeping => "bookkeeping",
            Phase::Sort => "sort",
            Phase::Admission => "admission",
            Phase::Service => "service",
        }
    }

    fn index(&self) -> usize {
        match self {
            Phase::Bookkeeping => 0,
            Phase::Sort => 1,
            Phase::Admission => 2,
            Phase::Service => 3,
        }
    }
}

/// Accumulated timings of one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Spans recorded (deterministic given the workload).
    pub spans: u64,
    /// Total wall-clock time inside the phase.
    pub total: Nanos,
    /// Longest single span.
    pub max: Nanos,
}

impl PhaseStats {
    fn record(&mut self, elapsed: Nanos) {
        self.spans += 1;
        self.total += elapsed;
        self.max = self.max.max(elapsed);
    }
}

/// Per-phase wall-clock accumulators.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    phases: [PhaseStats; 4],
}

impl Profiler {
    /// A zeroed profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// The accumulated stats for `phase`.
    pub fn stats(&self, phase: Phase) -> PhaseStats {
        self.phases[phase.index()]
    }

    /// Total wall-clock time across all phases.
    pub fn total(&self) -> Nanos {
        self.phases.iter().map(|p| p.total).sum()
    }

    /// Fold one finished span in.
    pub fn record(&mut self, phase: Phase, elapsed: Nanos) {
        self.phases[phase.index()].record(elapsed);
    }

    /// Full JSON including wall-clock times (nondeterministic; for
    /// human-facing reports, not the pinned baseline).
    pub fn to_json(&self) -> String {
        let fields: Vec<String> = PHASES
            .iter()
            .map(|p| {
                let s = self.stats(*p);
                format!(
                    "\"{}\":{{\"spans\":{},\"total_ns\":{},\"max_ns\":{}}}",
                    p.label(),
                    s.spans,
                    s.total.as_nanos(),
                    s.max.as_nanos()
                )
            })
            .collect();
        format!("{{{}}}", fields.join(","))
    }

    /// Deterministic JSON carrying span counts only (what the bench
    /// baseline pins as `sections/profile`).
    pub fn counts_json(&self) -> String {
        let fields: Vec<String> = PHASES
            .iter()
            .map(|p| format!("\"{}\":{{\"spans\":{}}}", p.label(), self.stats(*p).spans))
            .collect();
        format!("{{{}}}", fields.join(","))
    }
}

/// The handle the service loop holds: either disabled (default) or a
/// shared reference to a [`Profiler`].
#[derive(Clone, Default)]
pub struct ProfSink(Option<Rc<RefCell<Profiler>>>);

impl ProfSink {
    /// The disabled sink: `enter` returns `None` without reading the
    /// clock.
    pub fn noop() -> ProfSink {
        ProfSink(None)
    }

    /// A sink feeding a shared profiler the caller keeps a handle to.
    pub fn shared(profiler: &Rc<RefCell<Profiler>>) -> ProfSink {
        ProfSink(Some(Rc::clone(profiler)))
    }

    /// Convenience: a fresh profiler plus the sink feeding it.
    pub fn fresh() -> (ProfSink, Rc<RefCell<Profiler>>) {
        let profiler = Rc::new(RefCell::new(Profiler::new()));
        (ProfSink::shared(&profiler), profiler)
    }

    /// True if spans are being timed.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Open a span for `phase`. Disabled sinks return `None` before
    /// touching the clock; enabled sinks stamp the span start, and the
    /// span records itself into the profiler when dropped.
    #[inline]
    pub fn enter(&self, phase: Phase) -> Option<PhaseSpan> {
        let profiler = self.0.as_ref()?;
        Some(PhaseSpan {
            profiler: Rc::clone(profiler),
            phase,
            begin: std::time::Instant::now(),
        })
    }
}

impl fmt::Debug for ProfSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ProfSink")
            .field(&if self.0.is_some() { "enabled" } else { "noop" })
            .finish()
    }
}

/// An open phase span; records its elapsed wall time on drop.
pub struct PhaseSpan {
    profiler: Rc<RefCell<Profiler>>,
    phase: Phase,
    begin: std::time::Instant,
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        let elapsed =
            Nanos::from_nanos(self.begin.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        self.profiler.borrow_mut().record(self.phase, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_opens_no_spans() {
        let sink = ProfSink::noop();
        assert!(!sink.is_enabled());
        assert!(sink.enter(Phase::Sort).is_none());
    }

    #[test]
    fn spans_record_on_drop() {
        let (sink, profiler) = ProfSink::fresh();
        assert!(sink.is_enabled());
        {
            let _span = sink.enter(Phase::Service);
            let _nested = sink.enter(Phase::Admission);
        }
        let p = profiler.borrow();
        assert_eq!(p.stats(Phase::Service).spans, 1);
        assert_eq!(p.stats(Phase::Admission).spans, 1);
        assert_eq!(p.stats(Phase::Sort).spans, 0);
        assert!(p.total() >= p.stats(Phase::Service).max);
    }

    #[test]
    fn counts_json_is_deterministic_shape() {
        let mut p = Profiler::new();
        p.record(Phase::Sort, Nanos::from_nanos(10));
        p.record(Phase::Sort, Nanos::from_nanos(30));
        let counts = p.counts_json();
        assert_eq!(
            counts,
            "{\"bookkeeping\":{\"spans\":0},\"sort\":{\"spans\":2},\
             \"admission\":{\"spans\":0},\"service\":{\"spans\":0}}"
        );
        assert_eq!(p.stats(Phase::Sort).max, Nanos::from_nanos(30));
        assert_eq!(p.stats(Phase::Sort).total, Nanos::from_nanos(40));
        let full = p.to_json();
        assert!(full.contains("\"sort\":{\"spans\":2,\"total_ns\":40,\"max_ns\":30}"));
    }
}
