//! Aggregate statistics: summaries, streaming accumulators, histograms.
//!
//! [`NanosSummary`] is the workspace's canonical duration summary (it
//! was born in `strandfs-sim` and now lives here so every layer can use
//! it); [`NanosAcc`]/[`U64Acc`] build one incrementally without holding
//! samples; [`NanosHistogram`] buckets durations by power-of-two width
//! for bounded-memory distribution export.

use std::fmt::Write as _;

use strandfs_units::Nanos;

/// Summary statistics over a set of durations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NanosSummary {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample (zero when empty).
    pub min: Nanos,
    /// Largest sample (zero when empty).
    pub max: Nanos,
    /// Mean sample (zero when empty).
    pub mean: Nanos,
}

impl NanosSummary {
    /// Summarize an iterator of durations.
    pub fn of(samples: impl IntoIterator<Item = Nanos>) -> NanosSummary {
        let mut acc = NanosAcc::default();
        for s in samples {
            acc.record(s);
        }
        acc.summary()
    }

    /// The summary as a hand-rolled JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{}}}",
            self.count,
            self.min.as_nanos(),
            self.max.as_nanos(),
            self.mean.as_nanos()
        )
    }
}

/// Streaming accumulator for durations: O(1) memory, yields a
/// [`NanosSummary`] at any point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NanosAcc {
    count: u64,
    min: Nanos,
    max: Nanos,
    total: Nanos,
}

impl NanosAcc {
    /// Fold one sample in.
    #[inline]
    pub fn record(&mut self, sample: Nanos) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.count += 1;
        self.total += sample;
    }

    /// Samples recorded so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[inline]
    pub fn total(&self) -> Nanos {
        self.total
    }

    /// The summary of everything recorded so far.
    pub fn summary(&self) -> NanosSummary {
        if self.count == 0 {
            return NanosSummary::default();
        }
        NanosSummary {
            count: self.count,
            min: self.min,
            max: self.max,
            mean: self.total / self.count,
        }
    }
}

/// Streaming accumulator for dimensionless counts (sectors, gaps, …).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct U64Acc {
    count: u64,
    min: u64,
    max: u64,
    total: u64,
}

impl U64Acc {
    /// Fold one sample in.
    #[inline]
    pub fn record(&mut self, sample: u64) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.count += 1;
        self.total += sample;
    }

    /// Samples recorded so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample (zero when empty).
    #[inline]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (zero when empty).
    #[inline]
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Mean sample, rounded down (zero when empty).
    #[inline]
    pub fn mean(&self) -> u64 {
        self.total.checked_div(self.count).unwrap_or(0)
    }

    /// The accumulator as a hand-rolled JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{}}}",
            self.count,
            self.min(),
            self.max(),
            self.mean()
        )
    }
}

/// Number of log₂ buckets: bucket `i` holds samples in
/// `[2^(i−1), 2^i)` ns (bucket 0 holds zero), so 64 buckets cover the
/// full `u64` nanosecond range.
const BUCKETS: usize = 65;

/// A fixed-size log₂-bucketed histogram of durations.
///
/// Bucket `i > 0` counts samples whose value `v` satisfies
/// `2^(i−1) ≤ v < 2^i` nanoseconds; bucket 0 counts exact zeros. The
/// memory footprint is constant regardless of sample count, which is
/// what lets the recorder keep distributions for arbitrarily long runs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NanosHistogram {
    buckets: [u64; BUCKETS],
    acc: NanosAcc,
}

impl Default for NanosHistogram {
    fn default() -> Self {
        NanosHistogram {
            buckets: [0; BUCKETS],
            acc: NanosAcc::default(),
        }
    }
}

impl NanosHistogram {
    /// Fold one sample in.
    #[inline]
    pub fn record(&mut self, sample: Nanos) {
        let v = sample.as_nanos();
        let idx = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.acc.record(sample);
    }

    /// Samples recorded so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.acc.count()
    }

    /// The summary of everything recorded so far.
    pub fn summary(&self) -> NanosSummary {
        self.acc.summary()
    }

    /// Iterate non-empty buckets as `(lower_bound_ns, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
    }

    /// The histogram as a hand-rolled JSON object: summary plus sparse
    /// buckets keyed by lower bound in nanoseconds.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"summary\":");
        s.push_str(&self.summary().to_json());
        s.push_str(",\"buckets\":{");
        let mut first = true;
        for (lo, count) in self.nonzero_buckets() {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{lo}\":{count}");
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_samples() {
        let s = NanosSummary::of([
            Nanos::from_millis(2),
            Nanos::from_millis(8),
            Nanos::from_millis(5),
        ]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, Nanos::from_millis(2));
        assert_eq!(s.max, Nanos::from_millis(8));
        assert_eq!(s.mean, Nanos::from_millis(5));
        assert_eq!(NanosSummary::of([]), NanosSummary::default());
    }

    #[test]
    fn acc_matches_batch_summary() {
        let samples = [
            Nanos::from_micros(3),
            Nanos::ZERO,
            Nanos::from_millis(40),
            Nanos::from_nanos(7),
        ];
        let mut acc = NanosAcc::default();
        for s in samples {
            acc.record(s);
        }
        assert_eq!(acc.summary(), NanosSummary::of(samples));
        assert_eq!(acc.total(), samples.into_iter().sum());
    }

    #[test]
    fn u64_acc_basics() {
        let mut acc = U64Acc::default();
        assert_eq!((acc.min(), acc.max(), acc.mean()), (0, 0, 0));
        for v in [10, 2, 6] {
            acc.record(v);
        }
        assert_eq!(acc.count(), 3);
        assert_eq!(acc.min(), 2);
        assert_eq!(acc.max(), 10);
        assert_eq!(acc.mean(), 6);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = NanosHistogram::default();
        h.record(Nanos::ZERO); // bucket 0
        h.record(Nanos::from_nanos(1)); // [1,2)
        h.record(Nanos::from_nanos(5)); // [4,8)
        h.record(Nanos::from_nanos(7)); // [4,8)
        h.record(Nanos::from_nanos(1024)); // [1024,2048)
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (4, 2), (1024, 1)]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.summary().max, Nanos::from_nanos(1024));
    }

    #[test]
    fn histogram_handles_extremes() {
        let mut h = NanosHistogram::default();
        h.record(Nanos::MAX);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(1u64 << 63, 1)]);
    }

    #[test]
    fn json_shapes() {
        let s = NanosSummary::of([Nanos::from_nanos(4)]);
        assert_eq!(
            s.to_json(),
            "{\"count\":1,\"min_ns\":4,\"max_ns\":4,\"mean_ns\":4}"
        );
        let mut h = NanosHistogram::default();
        h.record(Nanos::from_nanos(4));
        assert!(h.to_json().contains("\"buckets\":{\"4\":1}"));
        let mut u = U64Acc::default();
        u.record(9);
        assert_eq!(u.to_json(), "{\"count\":1,\"min\":9,\"max\":9,\"mean\":9}");
    }
}
