//! Recorder trait, the per-layer sink handle, and the bundled
//! bounded-memory ring recorder.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

use strandfs_units::Nanos;

use crate::event::{AccessDir, DegradeAction, Event, FaultClass};
use crate::summary::{NanosAcc, NanosHistogram, U64Acc};

/// Default ring capacity when `STRANDFS_OBS_CAP` is unset.
pub const DEFAULT_RING_CAP: usize = 65_536;

/// A sink for structured [`Event`]s.
///
/// Implementations must not feed information back into the emitting
/// layer — observation is strictly one-way, which is what makes the
/// zero-perturbation guarantee (identical `SimReport` with any
/// recorder) testable rather than aspirational.
pub trait Recorder {
    /// Accept one event.
    fn record(&mut self, event: Event);
}

/// The handle instrumented layers hold: either disabled (the default)
/// or a shared reference to a [`Recorder`].
///
/// Cloning is cheap (an `Rc` bump at most). The crucial property is in
/// [`ObsSink::emit`]: the event is built inside a closure that a
/// disabled sink never calls, so uninstrumented code pays one branch
/// per site and zero construction cost.
///
/// The simulation is single-threaded virtual time, hence
/// `Rc<RefCell<…>>` rather than an atomic handoff.
#[derive(Clone, Default)]
pub struct ObsSink(Option<Rc<RefCell<dyn Recorder>>>);

impl ObsSink {
    /// The disabled sink: every `emit` is a no-op.
    pub fn noop() -> ObsSink {
        ObsSink(None)
    }

    /// A sink feeding a shared recorder. The caller keeps its own
    /// `Rc` to inspect the recorder after the run.
    pub fn shared<R: Recorder + 'static>(recorder: &Rc<RefCell<R>>) -> ObsSink {
        ObsSink(Some(Rc::clone(recorder) as Rc<RefCell<dyn Recorder>>))
    }

    /// Convenience: a fresh [`RingRecorder`] of `cap` events plus the
    /// sink feeding it.
    pub fn ring(cap: usize) -> (ObsSink, Rc<RefCell<RingRecorder>>) {
        let recorder = Rc::new(RefCell::new(RingRecorder::new(cap)));
        (ObsSink::shared(&recorder), recorder)
    }

    /// True if events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record the event produced by `build` — or, when disabled, do
    /// nothing at all (`build` is never called).
    #[inline]
    pub fn emit(&self, build: impl FnOnce() -> Event) {
        if let Some(recorder) = &self.0 {
            recorder.borrow_mut().record(build());
        }
    }
}

impl fmt::Debug for ObsSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ObsSink")
            .field(&if self.0.is_some() { "enabled" } else { "noop" })
            .finish()
    }
}

/// Cumulative metrics extracted from the event stream.
///
/// Unlike the ring of raw events these never drop: counters and
/// constant-size accumulators only.
#[derive(Clone, Debug, Default)]
pub struct ObsMetrics {
    /// Disk read operations.
    pub disk_reads: u64,
    /// Disk write operations.
    pub disk_writes: u64,
    /// Sectors per disk op.
    pub disk_sectors: U64Acc,
    /// Cylinder distance travelled per disk op.
    pub disk_cyl_distance: U64Acc,
    /// Seek component per disk op.
    pub disk_seek: NanosAcc,
    /// Rotational-latency component per disk op.
    pub disk_rotation: NanosAcc,
    /// Transfer component per disk op.
    pub disk_transfer: NanosAcc,
    /// Total service time per disk op.
    pub disk_service: NanosAcc,
    /// Block placements.
    pub allocs: u64,
    /// Placements without a gap constraint in force (a strand's first
    /// block, or a wrap anomaly).
    pub allocs_unconstrained: u64,
    /// Inter-block gap actually chosen, in sectors.
    pub alloc_gap: U64Acc,
    /// Slack below the scattering upper bound, in sectors.
    pub alloc_slack: U64Acc,
    /// Admitted requests.
    pub admits: u64,
    /// Rejected requests.
    pub rejects: u64,
    /// Released requests.
    pub releases: u64,
    /// Admissions that grew the round size `k`.
    pub k_growths: u64,
    /// Largest round size any admission produced.
    pub k_peak: u64,
    /// Eq. 18 slack at each admission.
    pub admit_slack: NanosAcc,
    /// Service rounds started.
    pub rounds: u64,
    /// Streams serviced per round.
    pub round_active: U64Acc,
    /// Largest `k` any round used.
    pub round_k_max: u64,
    /// Wall-to-wall duration of completed rounds (start → end).
    pub round_duration: NanosAcc,
    /// Rounds that passed with nothing to service (all streams revoked).
    pub rounds_idle: u64,
    /// Per-stream service turns.
    pub stream_services: u64,
    /// Duration of each stream's service turn within a round.
    pub service_span: NanosAcc,
    /// The most recent `RoundStart` not yet closed by its `RoundEnd`
    /// (pairing state for `round_duration`).
    open_round: Option<(u64, strandfs_units::Instant)>,
    /// Display-clock starts observed (one per stream epoch that
    /// satisfied its read-ahead).
    pub display_starts: u64,
    /// Time-to-first-frame: admission (or re-admission) → display start.
    pub startup_latency: NanosHistogram,
    /// Deadline events seen.
    pub deadline_blocks: u64,
    /// Deadline events whose fetch completed late.
    pub deadline_late: u64,
    /// Margin (deadline − completion) for on-time blocks.
    pub deadline_margin: NanosHistogram,
    /// Lateness (completion − deadline) for late blocks.
    pub deadline_lateness: NanosHistogram,
    /// Permanent media errors observed.
    pub faults_media: u64,
    /// Transient read errors observed.
    pub faults_transient: u64,
    /// Latency spikes observed.
    pub faults_spike: u64,
    /// Operations slowed by a degraded-transfer window.
    pub faults_degraded: u64,
    /// Torn writes: only a sector prefix reached the medium.
    pub faults_torn: u64,
    /// Accesses refused by a crashed (frozen) device.
    pub faults_crashed: u64,
    /// Faults whose affected access was a write.
    pub faults_write: u64,
    /// Service time charged to faults (wasted attempts + extra latency).
    pub fault_penalty: NanosAcc,
    /// Read retries issued by the resilient read path.
    pub retries: u64,
    /// Edit boundaries healed by the scattering-maintenance pass.
    pub edit_heals: u64,
    /// Media blocks copied per healed boundary.
    pub edit_copied: U64Acc,
    /// Largest Eq. 19/20 copy bound in force at any heal.
    pub edit_bound_max: u64,
    /// Intent records persisted by the strand journal.
    pub journal_records: u64,
    /// Mount-time journal replays completed.
    pub recovers: u64,
    /// Structural fixes applied by fsck's repair mode.
    pub repairs: u64,
    /// Blocks dropped by the degradation ladder.
    pub degrade_drops: u64,
    /// Streams revoked through admission control.
    pub degrade_revokes: u64,
    /// Revoked streams re-admitted after the fault window cleared.
    pub degrade_readmits: u64,
    /// Blocks verified by the background scrubber.
    pub scrubbed: u64,
    /// Scrubbed blocks whose payload hash did not match the index stamp.
    pub scrub_corrupt: u64,
    /// Hedged reads issued against a replica.
    pub hedges: u64,
    /// Hedged reads the replica won.
    pub hedge_wins: u64,
    /// Members quarantined for breaching the read-latency SLO.
    pub quarantines: u64,
    /// Quarantined members re-admitted after clean probes.
    pub quarantine_readmits: u64,
}

impl ObsMetrics {
    fn fold(&mut self, event: &Event) {
        match *event {
            Event::DiskOp {
                dir,
                sectors,
                cyl_distance,
                seek,
                rotation,
                transfer,
                ..
            } => {
                match dir {
                    AccessDir::Read => self.disk_reads += 1,
                    AccessDir::Write => self.disk_writes += 1,
                }
                self.disk_sectors.record(sectors);
                self.disk_cyl_distance.record(cyl_distance);
                self.disk_seek.record(seek);
                self.disk_rotation.record(rotation);
                self.disk_transfer.record(transfer);
                self.disk_service.record(seek + rotation + transfer);
            }
            Event::Alloc { gap, slack, .. } => {
                self.allocs += 1;
                match gap {
                    Some(g) => self.alloc_gap.record(g),
                    None => self.allocs_unconstrained += 1,
                }
                if let Some(s) = slack {
                    self.alloc_slack.record(s);
                }
            }
            Event::Admit {
                k_old,
                k_new,
                slack,
                ..
            } => {
                self.admits += 1;
                if k_new > k_old {
                    self.k_growths += 1;
                }
                self.k_peak = self.k_peak.max(k_new);
                self.admit_slack.record(slack);
            }
            Event::Reject { .. } => self.rejects += 1,
            Event::Release { .. } => self.releases += 1,
            Event::RoundStart {
                round,
                active,
                k,
                at,
            } => {
                self.rounds += 1;
                self.round_active.record(active as u64);
                self.round_k_max = self.round_k_max.max(k);
                self.open_round = Some((round, at));
            }
            Event::StreamService { begin, end, .. } => {
                self.stream_services += 1;
                self.service_span.record(end - begin);
            }
            Event::RoundEnd { round, at } => {
                if let Some((open, started)) = self.open_round.take() {
                    if open == round {
                        self.round_duration.record(at - started);
                    }
                }
            }
            Event::RoundIdle { .. } => self.rounds_idle += 1,
            Event::DisplayStart { latency, .. } => {
                self.display_starts += 1;
                self.startup_latency.record(latency);
            }
            Event::Deadline {
                deadline,
                completed,
                ..
            } => {
                self.deadline_blocks += 1;
                if completed > deadline {
                    self.deadline_late += 1;
                    self.deadline_lateness.record(completed - deadline);
                } else {
                    self.deadline_margin.record(deadline - completed);
                }
            }
            Event::Fault {
                class,
                dir,
                penalty,
                ..
            } => {
                match class {
                    FaultClass::Media => self.faults_media += 1,
                    FaultClass::Transient => self.faults_transient += 1,
                    FaultClass::Spike => self.faults_spike += 1,
                    FaultClass::Degraded => self.faults_degraded += 1,
                    FaultClass::Torn => self.faults_torn += 1,
                    FaultClass::Crashed => self.faults_crashed += 1,
                }
                if dir == AccessDir::Write {
                    self.faults_write += 1;
                }
                self.fault_penalty.record(penalty);
            }
            Event::Retry { .. } => self.retries += 1,
            Event::EditHeal { copied, bound, .. } => {
                self.edit_heals += 1;
                self.edit_copied.record(copied);
                self.edit_bound_max = self.edit_bound_max.max(bound);
            }
            Event::Journal { .. } => self.journal_records += 1,
            Event::Recover { .. } => self.recovers += 1,
            Event::Repair { .. } => self.repairs += 1,
            Event::Degrade { action, .. } => match action {
                DegradeAction::DropBlock => self.degrade_drops += 1,
                DegradeAction::Revoke => self.degrade_revokes += 1,
                DegradeAction::Readmit => self.degrade_readmits += 1,
            },
            Event::Scrub { ok, .. } => {
                self.scrubbed += 1;
                if !ok {
                    self.scrub_corrupt += 1;
                }
            }
            Event::Hedge { won, .. } => {
                self.hedges += 1;
                if won {
                    self.hedge_wins += 1;
                }
            }
            Event::Quarantine { entered, .. } => {
                if entered {
                    self.quarantines += 1;
                } else {
                    self.quarantine_readmits += 1;
                }
            }
        }
    }

    /// The metrics as a hand-rolled JSON object (the `"obs"` section
    /// merged into `BENCH_*.json`).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"disk\":{{\"reads\":{},\"writes\":{},\"sectors\":{},",
                "\"cyl_distance\":{},\"seek\":{},\"rotation\":{},",
                "\"transfer\":{},\"service\":{}}},",
                "\"alloc\":{{\"count\":{},\"unconstrained\":{},\"gap\":{},\"slack\":{}}},",
                "\"admission\":{{\"admits\":{},\"rejects\":{},\"releases\":{},",
                "\"k_growths\":{},\"k_peak\":{},\"slack\":{}}},",
                "\"rounds\":{{\"count\":{},\"idle\":{},\"active\":{},\"k_max\":{},",
                "\"duration\":{},\"stream_services\":{},\"service_span\":{}}},",
                "\"startup\":{{\"count\":{},\"latency\":{}}},",
                "\"deadlines\":{{\"blocks\":{},\"late\":{},\"margin\":{},\"lateness\":{}}},",
                "\"edits\":{{\"heals\":{},\"copied\":{},\"bound_max\":{}}},",
                "\"faults\":{{\"media\":{},\"transient\":{},\"spike\":{},",
                "\"degraded\":{},\"torn\":{},\"crashed\":{},\"writes\":{},",
                "\"penalty\":{},\"retries\":{},",
                "\"drops\":{},\"revokes\":{},\"readmits\":{}}},",
                "\"recovery\":{{\"journal_records\":{},\"recovers\":{},\"repairs\":{}}},",
                "\"scrub\":{{\"checked\":{},\"corrupt\":{}}},",
                "\"hedge\":{{\"issued\":{},\"wins\":{},",
                "\"quarantines\":{},\"readmits\":{}}}}}"
            ),
            self.disk_reads,
            self.disk_writes,
            self.disk_sectors.to_json(),
            self.disk_cyl_distance.to_json(),
            self.disk_seek.summary().to_json(),
            self.disk_rotation.summary().to_json(),
            self.disk_transfer.summary().to_json(),
            self.disk_service.summary().to_json(),
            self.allocs,
            self.allocs_unconstrained,
            self.alloc_gap.to_json(),
            self.alloc_slack.to_json(),
            self.admits,
            self.rejects,
            self.releases,
            self.k_growths,
            self.k_peak,
            self.admit_slack.summary().to_json(),
            self.rounds,
            self.rounds_idle,
            self.round_active.to_json(),
            self.round_k_max,
            self.round_duration.summary().to_json(),
            self.stream_services,
            self.service_span.summary().to_json(),
            self.display_starts,
            self.startup_latency.to_json(),
            self.deadline_blocks,
            self.deadline_late,
            self.deadline_margin.to_json(),
            self.deadline_lateness.to_json(),
            self.edit_heals,
            self.edit_copied.to_json(),
            self.edit_bound_max,
            self.faults_media,
            self.faults_transient,
            self.faults_spike,
            self.faults_degraded,
            self.faults_torn,
            self.faults_crashed,
            self.faults_write,
            self.fault_penalty.summary().to_json(),
            self.retries,
            self.degrade_drops,
            self.degrade_revokes,
            self.degrade_readmits,
            self.journal_records,
            self.recovers,
            self.repairs,
            self.scrubbed,
            self.scrub_corrupt,
            self.hedges,
            self.hedge_wins,
            self.quarantines,
            self.quarantine_readmits,
        )
    }
}

/// The bundled recorder: a bounded ring of recent raw events plus
/// cumulative [`ObsMetrics`].
///
/// Once the ring is full the *oldest* event is dropped (and counted in
/// [`RingRecorder::dropped`]); metrics keep accumulating regardless, so
/// long runs keep exact counters and recent raw history in bounded
/// memory.
#[derive(Debug, Default)]
pub struct RingRecorder {
    cap: usize,
    ring: VecDeque<Event>,
    dropped: u64,
    metrics: ObsMetrics,
}

impl RingRecorder {
    /// A recorder keeping at most `cap` raw events.
    pub fn new(cap: usize) -> RingRecorder {
        RingRecorder {
            cap,
            ring: VecDeque::with_capacity(cap.min(1 << 16)),
            dropped: 0,
            metrics: ObsMetrics::default(),
        }
    }

    /// A recorder whose capacity comes from `STRANDFS_OBS_CAP`
    /// (default [`DEFAULT_RING_CAP`]; invalid values fall back to it).
    pub fn from_env() -> RingRecorder {
        let cap = std::env::var("STRANDFS_OBS_CAP")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_RING_CAP);
        RingRecorder::new(cap)
    }

    /// The retained raw events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// Retained raw-event count (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The cumulative metrics (never dropped).
    pub fn metrics(&self) -> &ObsMetrics {
        &self.metrics
    }

    /// Sum of all recorded disk service time (convenience for
    /// cross-checking against `DiskStats::busy_time`).
    pub fn disk_service_total(&self) -> Nanos {
        self.metrics.disk_service.total()
    }

    /// The full report as hand-rolled JSON: cumulative metrics plus
    /// ring occupancy.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"metrics\":{},\"ring\":{{\"cap\":{},\"len\":{},\"dropped\":{}}}}}",
            self.metrics.to_json(),
            self.cap,
            self.ring.len(),
            self.dropped
        )
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, event: Event) {
        self.metrics.fold(&event);
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strandfs_units::Instant;

    fn disk_op(lba: u64) -> Event {
        Event::DiskOp {
            dir: AccessDir::Read,
            lba,
            sectors: 8,
            cylinder: lba / 128,
            cyl_distance: 3,
            issued: Instant::EPOCH,
            seek: Nanos::from_millis(10),
            rotation: Nanos::from_millis(8),
            transfer: Nanos::from_millis(2),
        }
    }

    #[test]
    fn noop_sink_never_builds_the_event() {
        let sink = ObsSink::noop();
        assert!(!sink.is_enabled());
        sink.emit(|| panic!("a disabled sink must not construct events"));
    }

    #[test]
    fn shared_sink_records_through_clones() {
        let (sink, recorder) = ObsSink::ring(16);
        assert!(sink.is_enabled());
        let clone = sink.clone();
        sink.emit(|| disk_op(0));
        clone.emit(|| disk_op(128));
        let r = recorder.borrow();
        assert_eq!(r.len(), 2);
        assert_eq!(r.metrics().disk_reads, 2);
        assert_eq!(r.disk_service_total(), Nanos::from_millis(40));
    }

    #[test]
    fn ring_drops_oldest_but_metrics_accumulate() {
        let mut rec = RingRecorder::new(2);
        for i in 0..5 {
            rec.record(disk_op(i * 100));
        }
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 3);
        // Oldest first: ops 3 and 4 remain.
        let lbas: Vec<u64> = rec
            .events()
            .map(|e| match e {
                Event::DiskOp { lba, .. } => *lba,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(lbas, vec![300, 400]);
        // Metrics saw all five.
        assert_eq!(rec.metrics().disk_reads, 5);
        assert_eq!(rec.metrics().disk_service.count(), 5);
    }

    #[test]
    fn zero_capacity_ring_still_counts() {
        let mut rec = RingRecorder::new(0);
        rec.record(disk_op(0));
        assert!(rec.is_empty());
        assert_eq!(rec.dropped(), 1);
        assert_eq!(rec.metrics().disk_reads, 1);
    }

    #[test]
    fn metrics_fold_all_kinds() {
        let mut rec = RingRecorder::new(64);
        rec.record(disk_op(0));
        rec.record(Event::Alloc {
            strand: 1,
            block: 0,
            lba: 0,
            sectors: 8,
            gap: None,
            slack: None,
        });
        rec.record(Event::Alloc {
            strand: 1,
            block: 1,
            lba: 40,
            sectors: 8,
            gap: Some(32),
            slack: Some(96),
        });
        rec.record(Event::Admit {
            request: 7,
            n: 1,
            k_old: 0,
            k_new: 2,
            slack: Nanos::from_millis(5),
        });
        rec.record(Event::Reject {
            request: 8,
            active: 1,
            n_max: 1,
        });
        rec.record(Event::Release {
            request: 7,
            n: 0,
            k: 0,
        });
        rec.record(Event::RoundStart {
            round: 0,
            active: 3,
            k: 2,
            at: Instant::EPOCH,
        });
        rec.record(Event::StreamService {
            stream: 0,
            round: 0,
            begin: Instant::EPOCH,
            end: Instant::from_nanos(40),
            blocks: 2,
        });
        rec.record(Event::RoundEnd {
            round: 0,
            at: Instant::from_nanos(90),
        });
        rec.record(Event::DisplayStart {
            stream: 0,
            at: Instant::from_nanos(10),
            latency: Nanos::from_nanos(10),
        });
        rec.record(Event::Deadline {
            stream: 0,
            item: 0,
            round: 0,
            deadline: Instant::from_nanos(100),
            completed: Instant::from_nanos(80),
        });
        rec.record(Event::Deadline {
            stream: 0,
            item: 1,
            round: 1,
            deadline: Instant::from_nanos(100),
            completed: Instant::from_nanos(130),
        });
        rec.record(Event::Fault {
            class: FaultClass::Transient,
            dir: AccessDir::Read,
            lba: 40,
            sectors: 8,
            issued: Instant::EPOCH,
            detected: Instant::from_nanos(50),
            penalty: Nanos::from_nanos(50),
        });
        rec.record(Event::Fault {
            class: FaultClass::Spike,
            dir: AccessDir::Read,
            lba: 48,
            sectors: 8,
            issued: Instant::from_nanos(50),
            detected: Instant::from_nanos(120),
            penalty: Nanos::from_nanos(30),
        });
        rec.record(Event::Fault {
            class: FaultClass::Torn,
            dir: AccessDir::Write,
            lba: 64,
            sectors: 8,
            issued: Instant::from_nanos(120),
            detected: Instant::from_nanos(180),
            penalty: Nanos::from_nanos(60),
        });
        rec.record(Event::Fault {
            class: FaultClass::Crashed,
            dir: AccessDir::Write,
            lba: 72,
            sectors: 8,
            issued: Instant::from_nanos(180),
            detected: Instant::from_nanos(240),
            penalty: Nanos::from_nanos(60),
        });
        rec.record(Event::Journal {
            strand: 1,
            op: crate::event::JournalOp::Append,
            seq: 4,
            at: Instant::from_nanos(200),
        });
        rec.record(Event::Recover {
            durable: 1,
            completed: 1,
            blocks_recovered: 3,
            blocks_rolled_back: 1,
            at: Instant::from_nanos(260),
        });
        rec.record(Event::Repair {
            action: crate::event::RepairAction::TruncateStrand,
            strand: 2,
            detail: 1,
            at: Instant::from_nanos(280),
        });
        rec.record(Event::Retry {
            strand: 1,
            block: 0,
            attempt: 1,
            at: Instant::from_nanos(50),
            budget: Nanos::from_nanos(200),
        });
        rec.record(Event::EditHeal {
            rope: 3,
            copied: 2,
            bound: 4,
            new_strand: 9,
            at: Instant::from_nanos(290),
        });
        rec.record(Event::Degrade {
            stream: 0,
            round: 1,
            item: 2,
            action: DegradeAction::DropBlock,
            at: Instant::from_nanos(140),
        });
        rec.record(Event::Degrade {
            stream: 0,
            round: 1,
            item: 3,
            action: DegradeAction::Revoke,
            at: Instant::from_nanos(150),
        });
        rec.record(Event::Degrade {
            stream: 0,
            round: 3,
            item: 3,
            action: DegradeAction::Readmit,
            at: Instant::from_nanos(300),
        });
        rec.record(Event::Scrub {
            volume: 0,
            strand: 1,
            block: 0,
            ok: true,
            at: Instant::from_nanos(310),
        });
        rec.record(Event::Scrub {
            volume: 0,
            strand: 1,
            block: 1,
            ok: false,
            at: Instant::from_nanos(320),
        });
        rec.record(Event::Hedge {
            stream: 0,
            volume: 0,
            hedge_volume: 1,
            primary: Nanos::from_nanos(500),
            won: true,
            at: Instant::from_nanos(330),
        });
        rec.record(Event::Quarantine {
            volume: 0,
            entered: true,
            rounds: 3,
            at: Instant::from_nanos(340),
        });
        rec.record(Event::Quarantine {
            volume: 0,
            entered: false,
            rounds: 2,
            at: Instant::from_nanos(350),
        });
        let m = rec.metrics();
        assert_eq!(m.allocs, 2);
        assert_eq!(m.allocs_unconstrained, 1);
        assert_eq!(m.alloc_gap.mean(), 32);
        assert_eq!((m.admits, m.rejects, m.releases), (1, 1, 1));
        assert_eq!(m.k_growths, 1);
        assert_eq!(m.k_peak, 2);
        assert_eq!(m.rounds, 1);
        assert_eq!(m.round_k_max, 2);
        assert_eq!(m.stream_services, 1);
        assert_eq!(m.service_span.summary().mean, Nanos::from_nanos(40));
        assert_eq!(m.display_starts, 1);
        assert_eq!(m.startup_latency.count(), 1);
        assert_eq!(m.round_duration.summary().max, Nanos::from_nanos(90));
        assert_eq!(m.deadline_blocks, 2);
        assert_eq!(m.deadline_late, 1);
        assert_eq!(m.deadline_margin.count(), 1);
        assert_eq!(m.deadline_lateness.count(), 1);
        assert_eq!(
            (m.faults_media, m.faults_transient, m.faults_spike),
            (0, 1, 1)
        );
        assert_eq!((m.faults_torn, m.faults_crashed, m.faults_write), (1, 1, 2));
        assert_eq!((m.journal_records, m.recovers, m.repairs), (1, 1, 1));
        assert_eq!(m.fault_penalty.count(), 4);
        assert_eq!(m.retries, 1);
        assert_eq!(m.edit_heals, 1);
        assert_eq!(m.edit_copied.mean(), 2);
        assert_eq!(m.edit_bound_max, 4);
        assert_eq!(
            (m.degrade_drops, m.degrade_revokes, m.degrade_readmits),
            (1, 1, 1)
        );
        assert_eq!((m.scrubbed, m.scrub_corrupt), (2, 1));
        assert_eq!((m.hedges, m.hedge_wins), (1, 1));
        assert_eq!((m.quarantines, m.quarantine_readmits), (1, 1));
        // JSON is well-formed enough to contain every section.
        let json = rec.to_json();
        for key in [
            "\"disk\"",
            "\"alloc\"",
            "\"admission\"",
            "\"rounds\"",
            "\"startup\"",
            "\"deadlines\"",
            "\"edits\"",
            "\"faults\"",
            "\"recovery\"",
            "\"scrub\"",
            "\"hedge\"",
            "\"ring\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
