//! A mergeable quantile sketch over signed nanosecond margins.
//!
//! The windowed monitor needs per-window margin quantiles at 100k
//! streams, which rules out holding samples. The classic choices are
//! P² (five markers, interpolated) and log₂ bucketing; P²'s markers
//! shift with arrival order, so merging two windows is lossy and the
//! result depends on fold order. The log₂ variant is deterministic and
//! mergeable — bucket counts add — at the cost of one-octave value
//! resolution, which is plenty for "is the p1 margin collapsing"
//! questions. Margins are *signed* (negative = late), so the sketch
//! mirrors the [`crate::NanosHistogram`] layout on both sides of zero.

/// Log₂ buckets per sign, plus the zero bucket: indices `0..=63` hold
/// negative values (most negative lowest; `i64::MIN` needs exponent
/// 63), index 64 holds exact zeros, and `65..=127` hold positives
/// (exponents 0..=62 — positive `i64` tops out below 2⁶³, so the last
/// slot is spare symmetry padding).
const BUCKETS: usize = 129;

/// Index of the zero bucket.
const ZERO: usize = 64;

/// A fixed-size mergeable sketch of signed i64 samples.
///
/// Quantile answers are bucket lower bounds clamped to the exact
/// tracked min/max, so `quantile(0.0)` and `quantile(1.0)` are exact
/// and interior quantiles are within one octave of the true value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuantileSketch {
    buckets: [u64; BUCKETS],
    count: u64,
    min: i64,
    max: i64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch {
            buckets: [0; BUCKETS],
            count: 0,
            min: 0,
            max: 0,
        }
    }
}

/// Bucket index for a signed sample. Positive `v` lands in
/// `65 + floor(log2 v)`; negative `v` mirrors to `63 − floor(log2 |v|)`
/// so bucket order equals numeric order.
fn index_of(v: i64) -> usize {
    match v {
        0 => ZERO,
        v if v > 0 => ZERO + 1 + (63 - (v as u64).leading_zeros() as usize),
        v => ZERO - 1 - (63 - (v.unsigned_abs().leading_zeros() as usize)),
    }
}

/// The numeric lower bound of bucket `i` (the most pessimistic value
/// the bucket can hold): negative bucket `ZERO−1−e` covers
/// `[−(2^(e+1)−1), −2^e]`, the zero bucket is 0, positive bucket
/// `ZERO+1+e` covers `[2^e, 2^(e+1)−1]`.
fn lower_bound_of(i: usize) -> i64 {
    use std::cmp::Ordering;
    match i.cmp(&ZERO) {
        Ordering::Equal => 0,
        Ordering::Greater => 1i64 << (i - ZERO - 1),
        Ordering::Less => {
            let e = (ZERO - 1 - i) as u32;
            // −(2^(e+1) − 1), saturating at i64::MIN for the e = 63
            // bucket (computed in i128 to survive the negation).
            (-(((1u128 << (e + 1)) - 1) as i128)).max(i64::MIN as i128) as i64
        }
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> QuantileSketch {
        QuantileSketch::default()
    }

    /// Fold one signed sample in.
    #[inline]
    pub fn record(&mut self, v: i64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.buckets[index_of(v)] += 1;
    }

    /// Samples recorded so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample (zero when empty).
    pub fn min(&self) -> i64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (zero when empty).
    pub fn max(&self) -> i64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Merge another sketch in: bucket counts add, min/max widen. The
    /// result is identical to having recorded both sample sets into one
    /// sketch, in any order.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) as a conservative (lower
    /// octave bound) estimate, clamped to the exact min/max. Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> i64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // The extremes are tracked exactly.
        if q >= 1.0 {
            return self.max;
        }
        // Rank of the requested quantile, 1-based; q = 0 → rank 1
        // (the minimum), q = 1 → rank count (the maximum).
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return lower_bound_of(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_order_is_numeric_order() {
        let samples = [-1000, -17, -2, -1, 0, 1, 2, 17, 1000, i64::MIN, i64::MAX];
        let mut indexed: Vec<(usize, i64)> = samples.iter().map(|&v| (index_of(v), v)).collect();
        indexed.sort();
        let by_bucket: Vec<i64> = indexed.iter().map(|&(_, v)| v).collect();
        let mut by_value = samples.to_vec();
        by_value.sort_unstable();
        assert_eq!(by_bucket, by_value);
        for &v in &samples {
            let i = index_of(v);
            assert!(lower_bound_of(i) <= v, "lower bound of bucket {i} vs {v}");
        }
    }

    #[test]
    fn extremes_stay_in_range() {
        assert_eq!(index_of(i64::MIN), 0);
        assert_eq!(index_of(-1), ZERO - 1);
        assert_eq!(index_of(1), ZERO + 1);
        assert_eq!(index_of(i64::MAX), BUCKETS - 2);
        assert_eq!(lower_bound_of(0), i64::MIN);
        assert_eq!(lower_bound_of(ZERO - 1), -1);
        assert_eq!(lower_bound_of(ZERO + 1), 1);
    }

    #[test]
    fn quantiles_bound_the_truth() {
        let mut s = QuantileSketch::new();
        for v in [-900, -40, -3, 0, 5, 5, 80, 2000] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert_eq!(s.quantile(0.0), -900);
        assert_eq!(s.quantile(1.0), 2000);
        // Interior quantiles are within one octave below the true rank
        // value and never exceed it.
        let sorted = [-900, -40, -3, 0, 5, 5, 80, 2000];
        for (k, &truth) in sorted.iter().enumerate() {
            let q = (k + 1) as f64 / sorted.len() as f64;
            let est = s.quantile(q);
            assert!(est <= truth, "q={q}: {est} > {truth}");
            if truth > 0 {
                assert!(est * 2 > truth, "q={q}: {est} too far below {truth}");
            }
        }
    }

    #[test]
    fn empty_sketch_is_all_zero() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!((s.min(), s.max()), (0, 0));
        assert_eq!(s.quantile(0.5), 0);
    }

    #[test]
    fn merge_equals_combined_record() {
        let samples_a = [-50, -1, 7, 300];
        let samples_b = [0, 0, -9999, 12];
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut both = QuantileSketch::new();
        for v in samples_a {
            a.record(v);
            both.record(v);
        }
        for v in samples_b {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        // Merging an empty sketch changes nothing, in either direction.
        let mut c = both.clone();
        c.merge(&QuantileSketch::new());
        assert_eq!(c, both);
        let mut empty = QuantileSketch::new();
        empty.merge(&both);
        assert_eq!(empty, both);
    }
}
