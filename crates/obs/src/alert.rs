//! Declarative SLO rules evaluated at window close.
//!
//! Rules look only at the closed window series — never at raw events —
//! so evaluation cost is independent of stream count. The monitor
//! evaluates every rule each time a window closes and latches fired
//! rules edge-triggered: a rule that stays breached across consecutive
//! windows raises one [`Alert`], and re-arms only after a window in
//! which its condition is false.

use strandfs_units::{Instant, Nanos};

use crate::window::WindowStats;

/// One declarative SLO rule.
#[derive(Clone, Debug)]
pub enum SloRule {
    /// Multi-window burn rate on deadline miss rate: fires when the
    /// miss rate over the last `short_windows` windows reaches
    /// `short_rate` *and* the rate over the last `long_windows` windows
    /// reaches `long_rate`. The fast window catches the outage, the
    /// slow window filters one-window blips — the classic fast/slow
    /// burn-rate pair.
    BurnRate {
        /// Stable name carried into the alert.
        label: &'static str,
        /// Fast-window span, in windows (includes the closing window).
        short_windows: usize,
        /// Slow-window span, in windows.
        long_windows: usize,
        /// Miss-rate threshold over the fast span (0.0–1.0).
        short_rate: f64,
        /// Miss-rate threshold over the slow span (0.0–1.0).
        long_rate: f64,
    },
    /// Eq. 18 slack exhaustion: fires when the window's live admission
    /// slack has been observed and sits below `min_slack`.
    SlackExhaustion {
        /// Stable name carried into the alert.
        label: &'static str,
        /// Minimum tolerable slack.
        min_slack: Nanos,
    },
    /// Fault storm: fires when a single window sees more than
    /// `max_faults` fault events.
    FaultStorm {
        /// Stable name carried into the alert.
        label: &'static str,
        /// Largest tolerable per-window fault count.
        max_faults: u64,
    },
    /// Fail-slow volume: fires when a single window sees more than
    /// `max_hedges` hedged reads — some member is breaching its
    /// read-latency SLO without erroring.
    VolumeSlow {
        /// Stable name carried into the alert.
        label: &'static str,
        /// Largest tolerable per-window hedged-read count.
        max_hedges: u64,
    },
}

impl SloRule {
    /// The rule's stable name.
    pub fn label(&self) -> &'static str {
        match self {
            SloRule::BurnRate { label, .. }
            | SloRule::SlackExhaustion { label, .. }
            | SloRule::FaultStorm { label, .. }
            | SloRule::VolumeSlow { label, .. } => label,
        }
    }

    /// The rule's kind label for JSON and trace names.
    pub fn kind(&self) -> &'static str {
        match self {
            SloRule::BurnRate { .. } => "burn_rate",
            SloRule::SlackExhaustion { .. } => "slack",
            SloRule::FaultStorm { .. } => "fault_storm",
            SloRule::VolumeSlow { .. } => "volume_slow",
        }
    }

    /// Evaluate against the closing window, with `history` holding the
    /// previously closed windows oldest-first. Returns the observed
    /// `(value, threshold)` pair when the rule is breached.
    pub fn check(&self, history: &[&WindowStats], closing: &WindowStats) -> Option<(f64, f64)> {
        match *self {
            SloRule::BurnRate {
                short_windows,
                long_windows,
                short_rate,
                long_rate,
                ..
            } => {
                let rate_over = |span: usize| -> Option<f64> {
                    let tail = span.saturating_sub(1).min(history.len());
                    let (mut blocks, mut late) = (closing.deadline_blocks, closing.deadline_late);
                    for w in history.iter().rev().take(tail) {
                        blocks += w.deadline_blocks;
                        late += w.deadline_late;
                    }
                    (blocks > 0).then(|| late as f64 / blocks as f64)
                };
                let short = rate_over(short_windows)?;
                let long = rate_over(long_windows)?;
                (short >= short_rate && long >= long_rate).then_some((short, short_rate))
            }
            SloRule::SlackExhaustion { min_slack, .. } => {
                let slack = closing.slack?;
                (slack < min_slack)
                    .then_some((slack.as_nanos() as f64, min_slack.as_nanos() as f64))
            }
            SloRule::FaultStorm { max_faults, .. } => {
                (closing.faults > max_faults).then_some((closing.faults as f64, max_faults as f64))
            }
            SloRule::VolumeSlow { max_hedges, .. } => {
                (closing.hedges > max_hedges).then_some((closing.hedges as f64, max_hedges as f64))
            }
        }
    }
}

/// A fired SLO rule, stamped with the window that closed it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Alert {
    /// The breached rule's label.
    pub rule: &'static str,
    /// The rule kind (`burn_rate`, `slack`, `fault_storm`).
    pub kind: &'static str,
    /// Index of the window whose close fired the rule.
    pub window: u64,
    /// Virtual time of that window's last event.
    pub at: Instant,
    /// The observed value that breached the threshold.
    pub value: f64,
    /// The threshold it breached.
    pub threshold: f64,
}

impl Alert {
    /// The alert as a hand-rolled JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"kind\":\"{}\",\"window\":{},\"at_ns\":{},\"value\":{:.6},\"threshold\":{:.6}}}",
            self.rule,
            self.kind,
            self.window,
            self.at.as_nanos(),
            self.value,
            self.threshold
        )
    }
}
