//! Zero-perturbation observability for strandfs.
//!
//! The paper's central claims are *timing* claims — continuity (Eqs.
//! 1–6), round feasibility (Eq. 15) and transient-safe admission
//! (Eq. 18) — so a deadline miss must be attributable to its cause:
//! seek vs. rotation vs. transfer vs. a bad admission decision. This
//! crate is the observability spine that makes that attribution
//! possible without perturbing the thing being measured:
//!
//! * [`Event`] — the structured event taxonomy emitted by every layer
//!   (disk operations with their seek/rotation/transfer decomposition,
//!   allocation decisions with constraint slack, admission transitions
//!   with Eq. 15/18 slack, service rounds, per-block deadline margins);
//! * [`Recorder`] — the sink trait, with [`ObsSink`] as the cheap
//!   cloneable handle the layers hold. A disabled sink never constructs
//!   an event (construction happens inside a closure that is skipped),
//!   so uninstrumented runs are bit-identical to pre-instrumentation
//!   builds and pay one branch per call site;
//! * [`RingRecorder`] — the bundled recorder: a bounded ring buffer of
//!   recent events plus cumulative counters, [`NanosSummary`] timing
//!   aggregates and log₂ [`NanosHistogram`]s, exportable as hand-rolled
//!   JSON (no external dependencies) for merging into `BENCH_*.json`;
//! * [`WindowedMonitor`] — live health monitoring: the same event
//!   stream folded into fixed-width virtual-time windows (miss rate,
//!   margin quantiles via the mergeable [`QuantileSketch`], disk
//!   utilization, Eq. 18 slack, fault/degradation rates) with
//!   declarative [`SloRule`]s evaluated at window close and an
//!   anomaly-triggered flight recorder ([`FlightDump`]) that snapshots
//!   the raw-event ring around the offending span;
//! * [`Profiler`]/[`ProfSink`] — wall-clock phase timers for the
//!   service loop's hot phases, behind the same
//!   never-touches-the-clock-when-disabled discipline.
//!
//! Environment knobs (read by [`RingRecorder::from_env`]):
//!
//! * `STRANDFS_OBS_CAP` — ring capacity in events (default 65 536);
//!   the ring drops the *oldest* events once full, counters never stop.
//!
//! The simulation is single-threaded by design (virtual time), so the
//! shared handle is `Rc<RefCell<…>>`, not an atomic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alert;
mod event;
mod profile;
mod recorder;
mod sketch;
mod summary;
mod window;

pub use alert::{Alert, SloRule};
pub use event::{AccessDir, DegradeAction, Event, FaultClass, JournalOp, RepairAction};
pub use profile::{Phase, PhaseSpan, PhaseStats, ProfSink, Profiler, PHASES};
pub use recorder::{ObsMetrics, ObsSink, Recorder, RingRecorder};
pub use sketch::QuantileSketch;
pub use summary::{NanosAcc, NanosHistogram, NanosSummary, U64Acc};
pub use window::{FlightDump, MonitorConfig, WindowStats, WindowWidth, WindowedMonitor};
