//! Regression test for ring wraparound under a tiny `STRANDFS_OBS_CAP`:
//! the ring must drop the *oldest* events, report every drop, and keep
//! folding cumulative metrics for events the ring no longer holds.

use strandfs_obs::{Event, ObsSink, Recorder, RingRecorder};
use strandfs_units::Instant;

fn deadline(item: u64) -> Event {
    // Odd items are late: deadline 100, completion 150.
    let completed = if item % 2 == 1 { 150 } else { 50 };
    Event::Deadline {
        stream: 0,
        item,
        round: item / 2,
        deadline: Instant::from_nanos(100),
        completed: Instant::from_nanos(completed),
    }
}

#[test]
fn tiny_env_cap_wraps_dropping_oldest_while_metrics_keep_folding() {
    // The env knob is read at construction; a single-test binary keeps
    // the mutation race-free.
    std::env::set_var("STRANDFS_OBS_CAP", "3");
    let recorder = std::rc::Rc::new(std::cell::RefCell::new(RingRecorder::from_env()));
    let sink = ObsSink::shared(&recorder);

    const TOTAL: u64 = 10;
    for item in 0..TOTAL {
        sink.emit(|| deadline(item));
    }

    let rec = recorder.borrow();
    // Bounded at the env cap, oldest dropped first.
    assert_eq!(rec.len(), 3);
    assert_eq!(rec.dropped(), TOTAL - 3);
    let retained: Vec<u64> = rec
        .events()
        .map(|e| match e {
            Event::Deadline { item, .. } => *item,
            other => panic!("unexpected event {other:?}"),
        })
        .collect();
    assert_eq!(retained, vec![7, 8, 9], "ring must keep the newest events");

    // Cumulative metrics saw all ten events, including the seven the
    // ring evicted.
    let m = rec.metrics();
    assert_eq!(m.deadline_blocks, TOTAL);
    assert_eq!(m.deadline_late, TOTAL / 2);
    assert_eq!(m.deadline_margin.count(), TOTAL / 2);
    assert_eq!(m.deadline_lateness.count(), TOTAL / 2);

    // The JSON report states the occupancy truthfully.
    let json = rec.to_json();
    assert!(json.contains("\"cap\":3"));
    assert!(json.contains("\"len\":3"));
    assert!(json.contains(&format!("\"dropped\":{}", TOTAL - 3)));
    drop(rec);

    // An invalid value falls back to the (unbounded-for-this-volume)
    // default instead of poisoning the recorder. Same test body — the
    // env var is process-global and tests run concurrently.
    std::env::set_var("STRANDFS_OBS_CAP", "not-a-number");
    let mut rec = RingRecorder::from_env();
    for item in 0..TOTAL {
        rec.record(deadline(item));
    }
    assert_eq!(rec.len(), TOTAL as usize);
    assert_eq!(rec.dropped(), 0);
}
