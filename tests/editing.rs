//! Cross-crate editing scenarios: every rope operation against real
//! recorded strands, with healing, interest-based GC and payload
//! identity.

use strandfs::core::mrs::compile_schedule;
use strandfs::core::rope::edit::{Interval, MediaSel};
use strandfs::core::FsError;
use strandfs::sim::playback::{simulate_playback, PlaybackConfig};
use strandfs::sim::{standard_volume, ClipSpec};
use strandfs::units::{Instant, Nanos};

fn secs(s: u64) -> Nanos {
    Nanos::from_secs(s)
}

#[test]
fn insert_preserves_total_media_and_heals() {
    let (mut mrs, ropes) = standard_volume(&[
        ClipSpec::av_seconds(6.0),
        ClipSpec::av_seconds(3.0).with_seed(50),
    ])
    .expect("build volume");
    let (base, clip) = (ropes[0], ropes[1]);
    mrs.insert(
        "sim",
        base,
        secs(2),
        MediaSel::Both,
        clip,
        Interval::whole(secs(3)),
        Instant::EPOCH,
    )
    .unwrap();
    let rope = mrs.rope(base).unwrap().clone();
    rope.check_invariants().unwrap();
    let d = rope.duration().as_secs_f64();
    assert!((d - 9.0).abs() < 0.1, "duration {d}");
    // Total video frames = 6s + 3s at 30 fps.
    let sched = compile_schedule(&rope, MediaSel::Video, Interval::whole(rope.duration())).unwrap();
    let units: u64 = sched.items.iter().map(|i| i.units).sum();
    assert_eq!(units, 270);
}

#[test]
fn delete_then_play_remains_continuous() {
    let (mut mrs, ropes) = standard_volume(&[ClipSpec::av_seconds(8.0)]).expect("build volume");
    let base = ropes[0];
    mrs.delete(
        "sim",
        base,
        MediaSel::Both,
        Interval::new(secs(2), secs(4)),
        Instant::EPOCH,
    )
    .unwrap();
    let rope = mrs.rope(base).unwrap().clone();
    assert!((rope.duration().as_secs_f64() - 4.0).abs() < 0.1);
    let mut sched =
        compile_schedule(&rope, MediaSel::Both, Interval::whole(rope.duration())).unwrap();
    mrs.resolve_silence(&mut sched).unwrap();
    let report =
        simulate_playback(&mut mrs, vec![sched], PlaybackConfig::with_k(2)).expect("simulate");
    assert!(
        report.all_continuous(),
        "deleted-middle rope must play clean across the healed boundary"
    );
}

#[test]
fn single_medium_delete_keeps_other_playing() {
    let (mut mrs, ropes) = standard_volume(&[ClipSpec::av_seconds(6.0)]).expect("build volume");
    let base = ropes[0];
    mrs.delete(
        "sim",
        base,
        MediaSel::Audio,
        Interval::new(secs(2), secs(2)),
        Instant::EPOCH,
    )
    .unwrap();
    let rope = mrs.rope(base).unwrap().clone();
    // Duration unchanged; video schedule covers 6 s, audio only 4 s.
    assert!((rope.duration().as_secs_f64() - 6.0).abs() < 0.1);
    let v = compile_schedule(&rope, MediaSel::Video, Interval::whole(rope.duration())).unwrap();
    let a = compile_schedule(&rope, MediaSel::Audio, Interval::whole(rope.duration())).unwrap();
    let vu: u64 = v.items.iter().map(|i| i.units).sum();
    let au: u64 = a.items.iter().map(|i| i.units).sum();
    assert_eq!(vu, 180);
    assert_eq!(au, 32_000, "2 s of audio removed from 6 s");
}

#[test]
fn replace_dubs_audio_from_other_rope() {
    let (mut mrs, ropes) = standard_volume(&[
        ClipSpec::av_seconds(6.0),
        ClipSpec::av_seconds(6.0).with_seed(31),
    ])
    .expect("build volume");
    let (base, dub) = (ropes[0], ropes[1]);
    let dub_audio_strand = mrs.rope(dub).unwrap().segments[0].audio.unwrap().strand;
    mrs.replace(
        "sim",
        base,
        MediaSel::Audio,
        Interval::new(secs(0), secs(6)),
        dub,
        Interval::whole(secs(6)),
        Instant::EPOCH,
    )
    .unwrap();
    let rope = mrs.rope(base).unwrap().clone();
    rope.check_invariants().unwrap();
    // The base rope's audio now comes (at least partly — healing may
    // bridge the first blocks) from the dub strand family, and its video
    // is untouched.
    assert!(rope
        .segments
        .iter()
        .any(|s| s.audio.map(|a| a.strand) == Some(dub_audio_strand)));
    let v = compile_schedule(&rope, MediaSel::Video, Interval::whole(rope.duration())).unwrap();
    let vu: u64 = v.items.iter().map(|i| i.units).sum();
    assert_eq!(vu, 180);
}

#[test]
fn substring_shares_strands_without_copying() {
    let (mut mrs, ropes) = standard_volume(&[ClipSpec::av_seconds(6.0)]).expect("build volume");
    let base = ropes[0];
    let used_before = mrs.msm().allocator().freemap().used();
    let sub = mrs
        .substring("sim", base, MediaSel::Both, Interval::new(secs(1), secs(3)))
        .unwrap();
    // SUBSTRING allocates nothing.
    assert_eq!(mrs.msm().allocator().freemap().used(), used_before);
    let sub_rope = mrs.rope(sub).unwrap();
    let base_rope = mrs.rope(base).unwrap();
    assert!(sub_rope.strand_ids().is_subset(&base_rope.strand_ids()));
}

#[test]
fn concat_and_gc_interplay() {
    let (mut mrs, ropes) = standard_volume(&[
        ClipSpec::av_seconds(3.0),
        ClipSpec::av_seconds(3.0).with_seed(8),
    ])
    .expect("build volume");
    let joined = mrs.concat("sim", ropes[0], ropes[1]).unwrap();
    // Deleting the sources must not free the strands: the joined rope
    // still references them.
    mrs.delete_rope("sim", ropes[0]).unwrap();
    mrs.delete_rope("sim", ropes[1]).unwrap();
    assert!(mrs.gc().is_empty());
    let rope = mrs.rope(joined).unwrap().clone();
    let mut sched =
        compile_schedule(&rope, MediaSel::Both, Interval::whole(rope.duration())).unwrap();
    mrs.resolve_silence(&mut sched).unwrap();
    let report =
        simulate_playback(&mut mrs, vec![sched], PlaybackConfig::with_k(2)).expect("simulate");
    assert!(report.all_continuous());
    // Now delete the joined rope: everything becomes collectable.
    mrs.delete_rope("sim", joined).unwrap();
    let collected = mrs.gc();
    assert!(collected.len() >= 4, "collected {}", collected.len());
    // And the space is truly reclaimed (only index/text residue remains).
    assert!(mrs.msm().utilization() < 0.02);
}

#[test]
fn edit_access_is_enforced() {
    let (mut mrs, ropes) = standard_volume(&[ClipSpec::av_seconds(3.0)]).expect("build volume");
    let base = ropes[0];
    let err = mrs.delete(
        "mallory",
        base,
        MediaSel::Both,
        Interval::new(secs(0), secs(1)),
        Instant::EPOCH,
    );
    assert!(matches!(err, Err(FsError::AccessDenied { .. })));
    // Play access is open by default, so SUBSTRING works for others.
    assert!(mrs
        .substring(
            "mallory",
            base,
            MediaSel::Both,
            Interval::new(secs(0), secs(1))
        )
        .is_ok());
}

#[test]
fn bad_intervals_rejected_everywhere() {
    let (mut mrs, ropes) = standard_volume(&[ClipSpec::av_seconds(3.0)]).expect("build volume");
    let base = ropes[0];
    let too_long = Interval::new(secs(2), secs(5));
    assert!(matches!(
        mrs.substring("sim", base, MediaSel::Both, too_long),
        Err(FsError::BadInterval { .. })
    ));
    assert!(matches!(
        mrs.delete("sim", base, MediaSel::Both, too_long, Instant::EPOCH),
        Err(FsError::BadInterval { .. })
    ));
    let empty = Interval::new(secs(1), Nanos::ZERO);
    assert!(matches!(
        mrs.substring("sim", base, MediaSel::Both, empty),
        Err(FsError::BadInterval { .. })
    ));
}

#[test]
fn volume_is_fsck_clean_after_edit_storm() {
    use strandfs::core::fsck::check_volume;
    let (mut mrs, ropes) = standard_volume(&[
        ClipSpec::av_seconds(6.0),
        ClipSpec::av_seconds(4.0).with_seed(91),
    ])
    .expect("build volume");
    let (a, b) = (ropes[0], ropes[1]);
    mrs.insert(
        "sim",
        a,
        secs(2),
        MediaSel::Both,
        b,
        Interval::new(secs(1), secs(2)),
        Instant::EPOCH,
    )
    .unwrap();
    mrs.delete(
        "sim",
        a,
        MediaSel::Both,
        Interval::new(secs(5), secs(1)),
        Instant::EPOCH,
    )
    .unwrap();
    let sub = mrs
        .substring("sim", a, MediaSel::Both, Interval::new(secs(1), secs(3)))
        .unwrap();
    let _joined = mrs.concat("sim", sub, b).unwrap();
    mrs.delete_rope("sim", b).unwrap();
    mrs.gc();
    let report = check_volume(&mut mrs, Instant::EPOCH);
    assert!(
        report.clean(),
        "fsck findings after edit storm: {:?}",
        report.findings
    );
    assert!(report.strands_checked >= 4);
    assert!(report.ropes_checked >= 3);
}

#[test]
fn chained_edits_keep_invariants() {
    let (mut mrs, ropes) = standard_volume(&[
        ClipSpec::av_seconds(6.0),
        ClipSpec::av_seconds(4.0).with_seed(21),
    ])
    .expect("build volume");
    let (a, b) = (ropes[0], ropes[1]);
    // insert -> delete -> replace -> insert, checking invariants at every
    // step.
    mrs.insert(
        "sim",
        a,
        secs(3),
        MediaSel::Both,
        b,
        Interval::new(secs(0), secs(2)),
        Instant::EPOCH,
    )
    .unwrap();
    mrs.rope(a).unwrap().check_invariants().unwrap();
    mrs.delete(
        "sim",
        a,
        MediaSel::Both,
        Interval::new(secs(1), secs(2)),
        Instant::EPOCH,
    )
    .unwrap();
    mrs.rope(a).unwrap().check_invariants().unwrap();
    mrs.replace(
        "sim",
        a,
        MediaSel::Both,
        Interval::new(secs(2), secs(1)),
        b,
        Interval::new(secs(3), secs(1)),
        Instant::EPOCH,
    )
    .unwrap();
    mrs.rope(a).unwrap().check_invariants().unwrap();
    let rope = mrs.rope(a).unwrap().clone();
    assert!((rope.duration().as_secs_f64() - 6.0).abs() < 0.15);
    // Still playable end to end.
    let mut sched =
        compile_schedule(&rope, MediaSel::Both, Interval::whole(rope.duration())).unwrap();
    mrs.resolve_silence(&mut sched).unwrap();
    let report =
        simulate_playback(&mut mrs, vec![sched], PlaybackConfig::with_k(2)).expect("simulate");
    assert!(report.all_continuous());
}

// ---------------------------------------------------------------------
// Regressions pinned by the fsx exerciser (`strandfs_testkit::fsx`).
// Each test replays the seeded op stream that originally exposed a
// latent edit-surface bug; the exerciser's own model check is the
// assertion. Keep the seeds — they are the reproduction recipe.
// ---------------------------------------------------------------------

#[test]
fn fsx_regression_seed23_zero_duration_remainder_and_zip_debt() {
    // Seed 23 exposed two bugs in one stream:
    //  * op 119 — an audio heal moved a whole ref into the bridge; the
    //    companion video split left one unit stranded in the dropped
    //    zero-duration remainder (fixed by the whole-bridge
    //    short-circuit in the companion splits);
    //  * op 333 — nominal-rate rounding concentrated split debt until
    //    three video units sat in a 7.5 ms sliver segment, breaking the
    //    rope's unit tolerance (fixed by density-proportional splits,
    //    `split_proportional`).
    let out = strandfs_testkit::fsx::run(&strandfs_testkit::fsx::FsxConfig::healthy(23, 400));
    assert!(out.edits > 100, "stream lost its edit mix: {out:?}");
}

#[test]
fn fsx_regression_seed1_substring_inflation_and_catalog_growth() {
    // Seed 1 exposed:
    //  * op 326 — substring of a dense region re-anchored a 5 ms
    //    segment to its 50 ms nominal ref duration, inflating the new
    //    rope (fixed by removing commit-time re-anchoring once splits
    //    became density-proportional);
    //  * op 492 — the live strand population (every healed boundary
    //    mints a bridge strand) outgrew the journal's checkpoint
    //    catalog slot (exercised the capacity error; the fsx volume now
    //    provisions the slot for thousands of entries).
    let out = strandfs_testkit::fsx::run(&strandfs_testkit::fsx::FsxConfig::healthy(1, 500));
    assert!(out.boundaries_healed > 500, "healing mix too thin: {out:?}");
}

#[test]
fn fsx_regression_seed3561088382_split_drift_accumulation() {
    // Minimal input `(3561088382, 81)` from STRANDFS_TEST_SEED=
    // 18398927829991303124: repeated inserts through `split_proportional`
    // each added up to half a unit of density drift to one child, and the
    // drift compounded across edits until segment 55 carried 325 ms of
    // video against a 260 ms window (unit 25 ms), breaking the rope's
    // 2-unit tolerance (fixed by `split_balanced`, which picks the unit
    // count minimizing the larger child's drift — halving inherited
    // drift at every cut instead of growing it).
    let out =
        strandfs_testkit::fsx::run(&strandfs_testkit::fsx::FsxConfig::healthy(3561088382, 81));
    assert!(out.edits > 10, "stream lost its edit mix: {out:?}");
}

#[test]
fn substring_exact_boundaries_share_everything() {
    // Off-by-one hunting at the substring edges: a whole-rope substring
    // must reproduce the rope exactly, and zero-length intervals must
    // be rejected rather than produce empty ropes.
    let (mut mrs, ropes) = standard_volume(&[ClipSpec::av_seconds(4.0)]).expect("build volume");
    let base = ropes[0];
    let total = mrs.rope(base).unwrap().duration();
    let whole = mrs
        .substring("sim", base, MediaSel::Both, Interval::whole(total))
        .unwrap();
    let (b, w) = (
        mrs.rope(base).unwrap().clone(),
        mrs.rope(whole).unwrap().clone(),
    );
    assert_eq!(b.duration(), w.duration());
    let sb = compile_schedule(&b, MediaSel::Both, Interval::whole(total)).unwrap();
    let sw = compile_schedule(&w, MediaSel::Both, Interval::whole(total)).unwrap();
    assert_eq!(sb.items.len(), sw.items.len());
    for (x, y) in sb.items.iter().zip(&sw.items) {
        assert_eq!((x.strand, x.block, x.units), (y.strand, y.block, y.units));
    }
    // Degenerate interval: rejected, not an empty rope.
    let r = mrs.substring(
        "sim",
        base,
        MediaSel::Both,
        Interval::new(secs(2), Nanos::ZERO),
    );
    assert!(matches!(r, Err(FsError::BadInterval { .. })), "{r:?}");
}

#[test]
fn delete_to_rope_end_keeps_tail_boundary_exact() {
    // Deleting the exact tail interval [2 s, 4 s) of a 4 s rope must
    // leave a 2 s rope whose last segment still ends on a playable
    // block boundary — the tail-edge twin of the head off-by-one.
    let (mut mrs, ropes) = standard_volume(&[ClipSpec::av_seconds(4.0)]).expect("build volume");
    let base = ropes[0];
    mrs.delete(
        "sim",
        base,
        MediaSel::Both,
        Interval::new(secs(2), secs(2)),
        Instant::EPOCH,
    )
    .unwrap();
    let rope = mrs.rope(base).unwrap().clone();
    rope.check_invariants().unwrap();
    assert!((rope.duration().as_secs_f64() - 2.0).abs() < 0.1);
    let sched = compile_schedule(&rope, MediaSel::Video, Interval::whole(rope.duration())).unwrap();
    let units: u64 = sched.items.iter().map(|i| i.units).sum();
    assert_eq!(units, 60, "2 s of NTSC video after the tail delete");
}

#[test]
fn gc_spares_strands_reachable_only_through_chained_edits() {
    // A concat-of-substrings rope is the only holder of its sources'
    // strands after the sources die: two generations of derived ropes,
    // and gc must trace interests through both.
    let (mut mrs, ropes) = standard_volume(&[
        ClipSpec::av_seconds(3.0),
        ClipSpec::av_seconds(3.0).with_seed(8),
    ])
    .expect("build volume");
    let sub_a = mrs
        .substring(
            "sim",
            ropes[0],
            MediaSel::Both,
            Interval::new(secs(1), secs(2)),
        )
        .unwrap();
    let sub_b = mrs
        .substring(
            "sim",
            ropes[1],
            MediaSel::Both,
            Interval::new(Nanos::ZERO, secs(2)),
        )
        .unwrap();
    let joined = mrs.concat("sim", sub_a, sub_b).unwrap();
    for r in [ropes[0], ropes[1], sub_a, sub_b] {
        mrs.delete_rope("sim", r).unwrap();
    }
    assert!(
        mrs.gc().is_empty(),
        "gc collected strands still referenced through the concat result"
    );
    let rope = mrs.rope(joined).unwrap().clone();
    rope.check_invariants().unwrap();
    let mut sched =
        compile_schedule(&rope, MediaSel::Both, Interval::whole(rope.duration())).unwrap();
    mrs.resolve_silence(&mut sched).unwrap();
    let report =
        simulate_playback(&mut mrs, vec![sched], PlaybackConfig::with_k(2)).expect("simulate");
    assert!(report.all_continuous());
    // Dropping the last holder frees the whole chain.
    mrs.delete_rope("sim", joined).unwrap();
    assert!(!mrs.gc().is_empty());
}
