//! Steady-state allocation test for the service loop.
//!
//! The scale rework keeps all per-round state (`active`, the SCAN key
//! table, the sweep order) in buffers reused across rounds and strips
//! payload copies from the simulation read path, so once the first few
//! rounds warm the buffers a round allocates nothing. This test pins
//! that with a counting global allocator: the same workload run as many
//! small rounds (k = 1, 8× the rounds) must not allocate measurably
//! more than as few large rounds (k = 8). Per-round heap churn — the
//! seed loop's fresh `active` vector and payload `Vec` per fetch —
//! scales with the round count and fails this immediately.
//!
//! This file holds exactly one test: the allocator count is global to
//! the binary, and a parallel sibling test would pollute the deltas.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn rounds_do_not_grow_the_heap() {
    use strandfs::core::mrs::{compile_schedule, Mrs, PlaySchedule};
    use strandfs::core::rope::edit::{Interval, MediaSel};
    use strandfs::sim::playback::{simulate_playback, PlaybackConfig};
    use strandfs::sim::{standard_volume, ClipSpec};

    fn schedules(mrs: &mut Mrs, ropes: &[strandfs::core::RopeId]) -> Vec<PlaySchedule> {
        ropes
            .iter()
            .map(|r| {
                let rope = mrs.rope(*r).unwrap().clone();
                let mut s =
                    compile_schedule(&rope, MediaSel::Both, Interval::whole(rope.duration()))
                        .unwrap();
                mrs.resolve_silence(&mut s).unwrap();
                s
            })
            .collect()
    }

    // Same streams, same blocks, same total work — only the round
    // count differs (40 items at k = 1 → 40 rounds; k = 8 → 5 rounds).
    // Volume construction happens outside the measured window.
    let run = |k: u64| {
        let clips = [ClipSpec::video_seconds(4.0); 2];
        let (mut mrs, ropes) = standard_volume(&clips).expect("build volume");
        let scheds = schedules(&mut mrs, &ropes);
        let before = ALLOCS.load(Ordering::Relaxed);
        let report = simulate_playback(&mut mrs, scheds, PlaybackConfig::with_k(k).scan())
            .expect("simulate");
        let allocs = ALLOCS.load(Ordering::Relaxed) - before;
        (report, allocs)
    };

    let (big_rounds, allocs_many) = run(1);
    let (few_rounds, allocs_few) = run(8);
    assert_eq!(big_rounds.rounds, 8 * few_rounds.rounds);
    assert!(allocs_few > 0, "the report itself allocates");
    // The 8×-rounds run may allocate slightly more *after* the loop —
    // its per-stream round series has 8× the samples — but nothing per
    // round inside it. The slop covers the series' amortized growth;
    // per-round churn at the seed loop's rate (≥ 1 allocation per
    // round plus 1 per fetch) sits far beyond it.
    let slop = 192;
    assert!(
        allocs_many <= allocs_few + slop,
        "8x rounds cost {allocs_many} allocations vs {allocs_few} — \
         the loop is allocating per round"
    );
}
