//! Edge-case unit tests for the admission-control formulas (Eqs. 15–18):
//! behaviour exactly at the capacity boundary `n = n_max`, rejection at
//! `n_max + 1`, and the transient-safety of step-wise round-size growth.
//!
//! The fixture is the paper's vintage service environment: a 28.8 Mbit/s
//! disk, 40 ms worst-case seek, 15 ms average inter-block latency, and
//! 100 ms video blocks (3 NTSC frames of 96 kbit), giving
//! `α = 50 ms`, `β = 25 ms`, `γ = 100 ms` and hence `n_max = 3`.

use strandfs::core::admission::{AdmissionController, Aggregates, RequestSpec, ServiceEnv};
use strandfs::core::{FsError, RequestId};
use strandfs::units::{BitRate, Bits, Seconds};

fn env() -> ServiceEnv {
    ServiceEnv {
        r_dt: BitRate::mbit_per_sec(28.8),
        l_seek_max: Seconds::from_millis(40.0),
        l_ds_avg: Seconds::from_millis(15.0),
    }
}

fn spec() -> RequestSpec {
    RequestSpec {
        q: 3,
        unit_bits: Bits::new(96_000),
        unit_rate: 30.0,
    }
}

fn aggregates(n: usize) -> Aggregates {
    Aggregates::compute(&env(), &vec![spec(); n]).unwrap()
}

#[test]
fn fixture_matches_hand_computed_aggregates() {
    let agg = aggregates(1);
    // One 300-kbit block over 28.8 Mbit/s is 10.4166̄ ms of transfer.
    let transfer_ms = 3.0 * 96_000.0 / 28.8e6 * 1_000.0;
    assert!((agg.alpha.get() * 1_000.0 - (40.0 + transfer_ms)).abs() < 1e-9);
    assert!((agg.beta.get() * 1_000.0 - (15.0 + transfer_ms)).abs() < 1e-9);
    assert!((agg.gamma.get() - 0.1).abs() < 1e-12);
    assert_eq!(agg.n_max(), 3);
}

// ---------- Eq. 17: the n = n_max boundary ----------

#[test]
fn n_max_itself_is_schedulable() {
    let agg = aggregates(1);
    let n_max = agg.n_max();
    // Both round-size formulas are defined at the boundary...
    let ks = agg.k_steady(n_max).expect("Eq. 16 defined at n_max");
    let kt = agg.k_transient(n_max).expect("Eq. 18 defined at n_max");
    assert!(kt >= ks, "transient round size dominates steady");
    // ...and their k actually satisfies their own inequality.
    assert!(agg.steady_feasible(n_max, ks));
    assert!(agg.transient_feasible(n_max, kt));
    // Eq. 15 spelled out: round time within playback budget.
    assert!(agg.round_time(n_max, ks) <= agg.playback_budget(ks));
}

#[test]
fn round_size_formulas_return_minimal_k() {
    let agg = aggregates(1);
    for n in 1..=agg.n_max() {
        let ks = agg.k_steady(n).unwrap();
        let kt = agg.k_transient(n).unwrap();
        if ks > 1 {
            assert!(
                !agg.steady_feasible(n, ks - 1),
                "n = {n}: k = {} not minimal for Eq. 15",
                ks
            );
        }
        if kt > 1 {
            assert!(
                !agg.transient_feasible(n, kt - 1),
                "n = {n}: k = {} not minimal for Eq. 18",
                kt
            );
        }
    }
}

// ---------- Eq. 17: n_max + 1 must be rejected ----------

#[test]
fn n_max_plus_one_has_no_round_size() {
    let agg = aggregates(1);
    let over = agg.n_max() + 1;
    // γ ≤ n·β: both formulas' denominators vanish or go negative.
    assert_eq!(agg.k_steady(over), None);
    assert_eq!(agg.k_transient(over), None);
    // And no finite k rescues it — Eq. 15 fails for any round size.
    for k in 1..=1_000 {
        assert!(
            !agg.steady_feasible(over, k),
            "n_max + 1 became feasible at k = {k}"
        );
    }
}

#[test]
fn controller_rejects_the_request_after_n_max() {
    let mut ctl = AdmissionController::new(env());
    let n_max = aggregates(1).n_max();
    for i in 0..n_max {
        ctl.try_admit(RequestId::from_raw(i as u64 + 1), spec())
            .unwrap_or_else(|e| panic!("request {} of {n_max} rejected: {e:?}", i + 1));
    }
    assert_eq!(ctl.active(), n_max);
    let over = ctl.try_admit(RequestId::from_raw(99), spec());
    assert!(matches!(over, Err(FsError::AdmissionRejected { .. })));
    // The failed admission must not have perturbed the controller.
    assert_eq!(ctl.active(), n_max);
    // Releasing one slot re-opens admission.
    ctl.release(RequestId::from_raw(1)).unwrap();
    ctl.try_admit(RequestId::from_raw(99), spec()).unwrap();
}

// ---------- Eq. 18: step-wise k growth is transient-safe ----------

#[test]
fn stepwise_growth_never_violates_existing_streams() {
    let mut ctl = AdmissionController::new(env());
    let n_max = aggregates(1).n_max();
    let mut k_prev = 0u64;
    for n in 1..=n_max {
        let admitted = ctl
            .try_admit(RequestId::from_raw(n as u64), spec())
            .unwrap();
        assert_eq!(admitted.k_old, k_prev);
        assert!(admitted.k_new >= admitted.k_old, "k must not shrink");
        assert_eq!(ctl.k(), admitted.k_new);

        let agg = aggregates(n);
        // The new round size is Eq. 18's, and it satisfies both bounds.
        assert_eq!(admitted.k_new, agg.k_transient(n).unwrap());
        assert!(agg.transient_feasible(n, admitted.k_new));
        assert!(agg.steady_feasible(n, admitted.k_new));

        // Every intermediate round size in the transition keeps the
        // n − 1 already-playing streams continuous (Eq. 15 with the old
        // request set holds at every +1 step — the point of Eq. 18).
        if n > 1 {
            let old = aggregates(n - 1);
            for step in admitted.k_old..=admitted.k_new {
                let k = step.max(1);
                assert!(
                    old.steady_feasible(n - 1, k),
                    "step k = {k} of {} → {} starves an existing stream",
                    admitted.k_old,
                    admitted.k_new
                );
            }
        }

        // The published transition schedule is exactly the +1 staircase.
        let want: Vec<u64> = (admitted.k_old + 1..=admitted.k_new).collect();
        assert_eq!(admitted.transition, want);
        k_prev = admitted.k_new;
    }
}

#[test]
fn transient_k_covers_one_extra_transfer() {
    // Eq. 18 unrolled: with k = k_transient, a round that transfers one
    // block more than is buffered still fits the budget of k blocks.
    let agg = aggregates(1);
    for n in 1..=agg.n_max() {
        let kt = agg.k_transient(n).unwrap();
        let k_plus_one_round = agg.round_time(n, kt + 1);
        assert!(
            k_plus_one_round <= agg.playback_budget(kt),
            "n = {n}: transition round of k+1 = {} transfers overruns \
             the k = {kt} buffer budget",
            kt + 1
        );
    }
}
