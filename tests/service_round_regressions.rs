//! Seed-pinned regression tests for the three service-loop round bugs
//! fixed alongside the scale rework (see `crates/sim/src/playback.rs`):
//!
//! 1. SCAN ordering re-invoked its sort key — a strand-index probe —
//!    O(n log n) times per round instead of once per consumed block.
//! 2. Arrival activation sized read-ahead from `order.len()`, which
//!    counts finished and revoked streams, not the live population.
//! 3. All-revoked idle rounds advanced the round counter but froze the
//!    virtual clock, under-reporting `recovery_time` by the outage's
//!    idle span.
//!
//! Each test fails against the pre-fix loop and passes against both the
//! optimized loop and its reference transliteration
//! (`strandfs::sim::reference`).

use std::cell::RefCell;

use strandfs::core::mrs::{compile_schedule, Mrs, PlaySchedule};
use strandfs::core::rope::edit::{Interval, MediaSel};
use strandfs::disk::FaultPlan;
use strandfs::obs::{Event, ObsSink};
use strandfs::sim::playback::{
    lba_probe_count, simulate_degraded, simulate_playback, Arrival, DegradeMode, PlaybackConfig,
};
use strandfs::sim::reference::simulate_degraded_reference;
use strandfs::sim::{faulty_volume, standard_volume, ClipSpec};
use strandfs::units::Nanos;

fn schedules(mrs: &mut Mrs, ropes: &[strandfs::core::RopeId]) -> Vec<PlaySchedule> {
    ropes
        .iter()
        .map(|r| {
            let rope = mrs.rope(*r).unwrap().clone();
            let mut s =
                compile_schedule(&rope, MediaSel::Both, Interval::whole(rope.duration())).unwrap();
            mrs.resolve_silence(&mut s).unwrap();
            s
        })
        .collect()
}

/// Bug 1: the SCAN sweep must not pay an index probe per sort
/// comparison. The memoized loop probes at most once per consumed
/// stored block (plus a handful of end-of-stream probes); the seed
/// loop's `sort_by_key(|&i| next_lba(..))` re-probed inside the sort
/// and blows well past that bound on the same workload.
#[test]
fn scan_ordering_probes_the_index_at_most_once_per_consumed_block() {
    let clips = [ClipSpec::video_seconds(4.0); 4];

    let (mut mrs, ropes) = standard_volume(&clips).expect("build volume");
    let scheds = schedules(&mut mrs, &ropes);
    let total_items: u64 = scheds.iter().map(|s| s.items.len() as u64).sum();
    let before = lba_probe_count();
    let opt = simulate_playback(&mut mrs, scheds, PlaybackConfig::with_k(4).scan())
        .expect("optimized scan run");
    let opt_probes = lba_probe_count() - before;
    // At most one probe per consumed stored block, plus up to two
    // terminal probes per stream (initial fill + the exhausted-schedule
    // sentinel).
    let bound = total_items + 2 * clips.len() as u64;
    assert!(
        opt_probes <= bound,
        "memoized SCAN made {opt_probes} index probes; bound is {bound}"
    );

    // The reference loop keeps the seed's per-comparison probing and
    // must exceed the optimized loop on the identical workload.
    let (mut mrs, ropes) = standard_volume(&clips).expect("build reference volume");
    let scheds = schedules(&mut mrs, &ropes);
    let before = lba_probe_count();
    let reference = simulate_degraded_reference(
        &mut mrs,
        scheds,
        Vec::new(),
        |k| k,
        |_, _| 4,
        strandfs::sim::ServiceOrder::Scan,
        DegradeMode::Strict,
    )
    .expect("reference scan run");
    let ref_probes = lba_probe_count() - before;
    assert_eq!(opt, reference, "loops must agree on the report");
    assert!(
        ref_probes > opt_probes,
        "seed-style sort probed {ref_probes} times, memoized {opt_probes}"
    );
}

/// Bug 2: when a stream arrives after the initial population has
/// drained, its round size — and through `read_ahead_of_k` its
/// read-ahead — must come from the *live* active population (here: the
/// arrival alone), not from `order.len()`, which still counts the three
/// finished streams. The seed loop made an extra `k_of_round` call with
/// `order.len()` during activation; the fixed loops make exactly one
/// call per active round, sized from the live set.
#[test]
fn drained_volume_arrival_sizes_read_ahead_from_live_population() {
    let run = |use_reference: bool| {
        let clips = [ClipSpec::video_seconds(2.0); 3];
        let (mut mrs, ropes) = standard_volume(&clips).expect("build volume");
        let mut scheds = schedules(&mut mrs, &ropes);
        let late = scheds.pop().expect("three schedules");
        let arrivals = vec![Arrival {
            at_round: 18,
            schedule: late,
        }];
        let calls: RefCell<Vec<(u64, usize)>> = RefCell::new(Vec::new());
        let k_of_round = |round: u64, n: usize| {
            calls.borrow_mut().push((round, n));
            n as u64
        };
        let report = if use_reference {
            simulate_degraded_reference(
                &mut mrs,
                scheds,
                arrivals,
                |k| k,
                k_of_round,
                strandfs::sim::ServiceOrder::RoundRobin,
                DegradeMode::Strict,
            )
        } else {
            simulate_degraded(
                &mut mrs,
                scheds,
                arrivals,
                |k| k,
                k_of_round,
                strandfs::sim::ServiceOrder::RoundRobin,
                DegradeMode::Strict,
            )
        }
        .expect("simulate");
        (report, calls.into_inner())
    };

    let (report, calls) = run(false);
    // Two base streams of 20 items at k = 2 finish by round 10; rounds
    // 10..18 idle with the arrival still pending; at round 18 the
    // arrival joins a drained volume and must run like a fresh solo
    // stream: k = 1, read-ahead 1, continuous playback.
    let at_arrival: Vec<_> = calls.iter().filter(|c| c.0 == 18).collect();
    assert_eq!(
        at_arrival,
        vec![&(18, 1)],
        "the arrival round must see exactly one k_of_round call, sized \
         from the live population"
    );
    assert!(
        calls.iter().all(|&(_, n)| n != 3),
        "no round may size itself from order.len() (= 3 after \
         activation, including the two finished streams): {calls:?}"
    );
    assert!(report.streams[2].blocks > 0);
    assert!(report.streams[2].continuous());

    // The reference loop shares the call contract verbatim.
    let (ref_report, ref_calls) = run(true);
    assert_eq!(report, ref_report);
    assert_eq!(calls, ref_calls);
}

/// Bug 3: an all-revoked round must advance the virtual clock by its
/// playback span so `recovery_time` covers the whole outage. The seed
/// loop froze `t` across idle rounds, and a solo revoked stream
/// re-admitted after an idle-only outage reported exactly zero
/// recovery time.
#[test]
fn idle_rounds_advance_the_outage_clock() {
    let clips = [ClipSpec::video_seconds(2.0)];
    let (mut mrs, ropes) = faulty_volume(&clips, 11).expect("build volume");
    let scheds = schedules(&mut mrs, &ropes);
    // Permanently corrupt one mid-clip block: the first failed fetch
    // revokes the stream, and with nobody else admitted every round
    // until re-admission is an all-revoked idle round.
    let item = scheds[0].items[5];
    let e = mrs
        .msm()
        .strand(item.strand)
        .unwrap()
        .block(item.block)
        .unwrap()
        .unwrap();
    assert!(mrs
        .msm_mut()
        .arm_faults(FaultPlan::clean().with_bad_extent(e)));
    let (sink, rec) = ObsSink::ring(1 << 14);
    mrs.set_obs(sink);
    let report = simulate_playback(
        &mut mrs,
        scheds,
        PlaybackConfig::with_k(4).degraded(DegradeMode::Ladder {
            revoke_after_drops: 1,
            readmit_clean_rounds: 1,
        }),
    )
    .expect("simulate");

    let s = &report.streams[0];
    assert_eq!(s.revokes, 1, "the bad block must revoke the solo stream");
    assert!(
        s.recovery_time > Nanos::ZERO,
        "idle-only outage must still accumulate recovery time"
    );
    // The outage was idle rounds and nothing else, so recovery time is
    // exactly the span the idle rounds advanced the clock by.
    let r = rec.borrow();
    let idle_span: Nanos = r
        .events()
        .filter_map(|e| match e {
            Event::RoundIdle { advanced, .. } => Some(*advanced),
            _ => None,
        })
        .fold(Nanos::ZERO, |a, b| a + b);
    assert!(idle_span > Nanos::ZERO);
    assert_eq!(s.recovery_time, idle_span);
    assert!(r.metrics().rounds_idle >= 1);
}
