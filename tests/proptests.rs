//! Property-based tests over the core invariants: index encoding,
//! rope-edit algebra, allocator constraints, admission monotonicity.
//!
//! Runs on the in-tree `strandfs-testkit` harness: inputs are drawn from
//! a seeded deterministic PRNG (`STRANDFS_TEST_SEED` to replay,
//! `STRANDFS_TEST_CASES` to rescale) and failures are shrunk before
//! being reported.

use strandfs::core::admission::{Aggregates, RequestSpec, ServiceEnv};
use strandfs::core::rope::edit::{self, Interval, MediaSel};
use strandfs::core::rope::{Rope, Segment, StrandRef};
use strandfs::core::strand::index::{
    build_primaries, HeaderBlock, IndexPtr, PrimaryBlock, PrimaryEntry, SecondaryBlock,
    SecondaryEntry,
};
use strandfs::core::{RopeId, StrandId};
use strandfs::disk::{AllocPolicy, Allocator, Extent, GapBounds};
use strandfs::units::{BitRate, Bits, Nanos, Seconds};
use strandfs_testkit::{
    any_bool, check, check_with, prop_assert, prop_assert_eq, prop_assume, vec as prop_vec,
    CaseError, Config,
};

// ---------- index encoding ----------

/// `(silence, sector, sector_count)` → a [`PrimaryEntry`]; stored
/// entries carry a sector-derived payload checksum stamp.
fn primary_entry((silence, sector, sector_count): (bool, u64, u32)) -> PrimaryEntry {
    if silence {
        PrimaryEntry::SILENCE
    } else {
        PrimaryEntry {
            sector,
            sector_count,
            sum: sector ^ 0x00C0_FFEE,
        }
    }
}

#[test]
fn primary_block_round_trips() {
    check(
        "primary_block_round_trips",
        prop_vec((any_bool(), 0u64..1 << 40, 1u32..1 << 16), 0..25),
        |raw| {
            let pb = PrimaryBlock {
                entries: raw.iter().copied().map(primary_entry).collect(),
            };
            let bytes = pb.encode(512);
            prop_assert_eq!(bytes.len(), 512);
            prop_assert_eq!(PrimaryBlock::decode(&bytes).unwrap(), pb);
            Ok(())
        },
    );
}

#[test]
fn secondary_block_round_trips() {
    check(
        "secondary_block_round_trips",
        prop_vec(
            (0u64..1 << 40, 1u32..1 << 16, 0u64..1 << 40, 1u32..8),
            0..21,
        ),
        |raw| {
            let sb = SecondaryBlock {
                entries: raw
                    .iter()
                    .map(
                        |&(start_block, block_count, sector, sector_count)| SecondaryEntry {
                            start_block,
                            block_count,
                            sector,
                            sector_count,
                        },
                    )
                    .collect(),
            };
            let bytes = sb.encode(512);
            prop_assert_eq!(SecondaryBlock::decode(&bytes).unwrap(), sb);
            Ok(())
        },
    );
}

#[test]
fn header_block_round_trips() {
    check(
        "header_block_round_trips",
        (
            1.0f64..100_000.0,
            1u64..10_000,
            1u64..1 << 24,
            0u64..1 << 40,
            0u64..1 << 32,
            prop_vec((0u64..1 << 40, 1u32..8), 0..30),
            any_bool(),
        ),
        |(rate, granularity, unit_bits, unit_count, block_count, ptrs, audio)| {
            let hb = HeaderBlock {
                medium: if *audio {
                    strandfs::media::Medium::Audio
                } else {
                    strandfs::media::Medium::Video
                },
                unit_rate: *rate,
                granularity: *granularity,
                unit_bits: *unit_bits,
                unit_count: *unit_count,
                block_count: *block_count,
                secondaries: ptrs
                    .iter()
                    .map(|&(sector, sector_count)| IndexPtr {
                        sector,
                        sector_count,
                    })
                    .collect(),
            };
            let bytes = hb.encode(512);
            prop_assert_eq!(HeaderBlock::decode(&bytes).unwrap(), hb);
            Ok(())
        },
    );
}

#[test]
fn build_primaries_preserves_every_block() {
    check(
        "build_primaries_preserves_every_block",
        (
            prop_vec((any_bool(), 0u64..1 << 30, 1u64..64), 0..400),
            1usize..64,
        ),
        |(raw, per_primary)| {
            let blocks: Vec<Option<Extent>> = raw
                .iter()
                .map(|&(hole, s, n)| if hole { None } else { Some(Extent::new(s, n)) })
                .collect();
            let sums: Vec<u64> = raw.iter().map(|&(_, s, _)| s ^ 0x5AFE).collect();
            let (pbs, coverage) = build_primaries(&blocks, &sums, *per_primary);
            let rebuilt: Vec<Option<Extent>> = pbs
                .iter()
                .flat_map(|pb| pb.entries.iter().map(|e| e.extent()))
                .collect();
            prop_assert_eq!(&rebuilt, &blocks);
            // Stored entries carry their stamped sums at the right offsets.
            let flat: Vec<PrimaryEntry> = pbs
                .iter()
                .flat_map(|pb| pb.entries.iter().copied())
                .collect();
            for (i, e) in flat.iter().enumerate() {
                if !e.is_silence() {
                    prop_assert_eq!(e.sum, sums[i]);
                }
            }
            // Coverage tiles the block range exactly.
            let mut next = 0u64;
            for (start, count) in &coverage {
                prop_assert_eq!(*start, next);
                next += *count as u64;
            }
            prop_assert_eq!(next, blocks.len() as u64);
            Ok(())
        },
    );
}

// ---------- rope edit algebra ----------

fn test_rope(video_units: u64, audio_units: u64) -> Rope {
    let mut rope = Rope::new(RopeId::from_raw(1), "p");
    rope.segments.push(Segment::new(
        Some(StrandRef {
            strand: StrandId::from_raw(1),
            start_unit: 0,
            len_units: video_units,
            unit_rate: 30.0,
            granularity: 3,
        }),
        Some(StrandRef {
            strand: StrandId::from_raw(2),
            start_unit: 0,
            len_units: audio_units,
            unit_rate: 8_000.0,
            granularity: 800,
        }),
    ));
    rope
}

#[test]
fn substring_length_is_interval_length() {
    check(
        "substring_length_is_interval_length",
        (30u64..3_000, 0u64..10_000, 100u64..10_000),
        |&(frames, start_ms, len_ms)| {
            let rope = test_rope(frames, frames * 8_000 / 30);
            let dur_ms = rope.duration().as_nanos() / 1_000_000;
            prop_assume!(start_ms + len_ms <= dur_ms);
            let iv = Interval::new(Nanos::from_millis(start_ms), Nanos::from_millis(len_ms));
            let sub = edit::substring(&rope, MediaSel::Both, iv).unwrap();
            sub.check_invariants().unwrap();
            let got = sub.duration().as_nanos() as i128;
            let want = iv.len.as_nanos() as i128;
            // Exact to within one media unit of rounding.
            prop_assert!((got - want).abs() <= 34_000_000, "got {got} want {want}");
            Ok(())
        },
    );
}

#[test]
fn insert_then_delete_restores_duration() {
    check(
        "insert_then_delete_restores_duration",
        (60u64..1_500, 30u64..600, 0u64..2_000),
        |&(frames, clip_frames, pos_ms)| {
            let base = test_rope(frames, frames * 8_000 / 30);
            let clip = test_rope(clip_frames, clip_frames * 8_000 / 30);
            let base_dur = base.duration();
            prop_assume!(Nanos::from_millis(pos_ms) <= base_dur);
            let clip_dur = clip.duration();
            let inserted = edit::insert(
                &base,
                Nanos::from_millis(pos_ms),
                MediaSel::Both,
                &clip,
                Interval::whole(clip_dur),
            )
            .unwrap();
            inserted.check_invariants().unwrap();
            let grew = inserted.duration().as_nanos() as i128 - base_dur.as_nanos() as i128;
            prop_assert!((grew - clip_dur.as_nanos() as i128).abs() <= 34_000_000);
            let removed = edit::delete(
                &inserted,
                MediaSel::Both,
                Interval::new(Nanos::from_millis(pos_ms), clip_dur),
            )
            .unwrap();
            removed.check_invariants().unwrap();
            let back = removed.duration().as_nanos() as i128 - base_dur.as_nanos() as i128;
            prop_assert!(back.abs() <= 67_000_000, "off by {back}");
            Ok(())
        },
    );
}

#[test]
fn concat_duration_is_sum() {
    check(
        "concat_duration_is_sum",
        (30u64..1_000, 30u64..1_000),
        |&(f1, f2)| {
            let a = test_rope(f1, f1 * 8_000 / 30);
            let b = test_rope(f2, f2 * 8_000 / 30);
            let joined = edit::concat(&a, &b);
            joined.check_invariants().unwrap();
            let got = joined.duration().as_nanos() as i128;
            let want = (a.duration() + b.duration()).as_nanos() as i128;
            prop_assert!((got - want).abs() <= 2);
            Ok(())
        },
    );
}

#[test]
fn edits_never_invent_strands() {
    check(
        "edits_never_invent_strands",
        (60u64..1_000, 0u64..1_000, 100u64..1_000),
        |&(frames, start_ms, len_ms)| {
            let rope = test_rope(frames, frames * 8_000 / 30);
            let dur_ms = rope.duration().as_nanos() / 1_000_000;
            prop_assume!(start_ms + len_ms <= dur_ms);
            let iv = Interval::new(Nanos::from_millis(start_ms), Nanos::from_millis(len_ms));
            let ids = rope.strand_ids();
            for edited in [
                edit::substring(&rope, MediaSel::Both, iv).unwrap(),
                edit::delete(&rope, MediaSel::Both, iv).unwrap(),
                edit::insert(
                    &rope,
                    Nanos::from_millis(start_ms),
                    MediaSel::Both,
                    &rope,
                    iv,
                )
                .unwrap(),
            ] {
                prop_assert!(edited.strand_ids().is_subset(&ids));
            }
            Ok(())
        },
    );
}

// ---------- multi-segment rope algebra ----------

/// A rope of `n` segments, each from distinct strand pairs, with varied
/// lengths.
fn multi_rope(seg_frames: &[u64]) -> Rope {
    let mut rope = Rope::new(RopeId::from_raw(9), "p");
    for (i, &frames) in seg_frames.iter().enumerate() {
        rope.segments.push(Segment::new(
            Some(StrandRef {
                strand: StrandId::from_raw(100 + i as u64),
                start_unit: 0,
                len_units: frames,
                unit_rate: 30.0,
                granularity: 3,
            }),
            Some(StrandRef {
                strand: StrandId::from_raw(200 + i as u64),
                start_unit: 0,
                len_units: frames * 8_000 / 30,
                unit_rate: 8_000.0,
                granularity: 800,
            }),
        ));
    }
    rope
}

/// The multi-segment cut/splice property, shared by the generated cases
/// and the pinned regression below.
fn multi_segment_property(
    seg_frames: &[u64],
    cut_start_pct: u64,
    cut_len_pct: u64,
) -> Result<(), CaseError> {
    let rope = multi_rope(seg_frames);
    rope.check_invariants().unwrap();
    let dur = rope.duration();
    let start = Nanos::from_nanos(dur.as_nanos() * cut_start_pct / 100);
    let len = Nanos::from_nanos(dur.as_nanos() * cut_len_pct / 100);
    let iv = Interval::new(start, len);

    let sub = edit::substring(&rope, MediaSel::Both, iv).unwrap();
    sub.check_invariants().unwrap();
    prop_assert!(sub.strand_ids().is_subset(&rope.strand_ids()));

    let cut = edit::delete(&rope, MediaSel::Both, iv).unwrap();
    cut.check_invariants().unwrap();
    // substring + remainder conserve total duration to unit rounding.
    let total = sub.duration() + cut.duration();
    let delta = total.as_nanos() as i128 - dur.as_nanos() as i128;
    prop_assert!(delta.abs() <= 67_000_000, "off by {delta} ns");

    // Re-inserting the substring at the cut point restores duration.
    let restored = edit::insert(
        &cut,
        start,
        MediaSel::Both,
        &sub,
        Interval::whole(sub.duration()),
    )
    .unwrap();
    restored.check_invariants().unwrap();
    let delta2 = restored.duration().as_nanos() as i128 - dur.as_nanos() as i128;
    prop_assert!(delta2.abs() <= 134_000_000, "off by {delta2} ns");
    Ok(())
}

#[test]
fn multi_segment_edits_hold_invariants() {
    check(
        "multi_segment_edits_hold_invariants",
        (prop_vec(30u64..600, 2..5), 0u64..80, 5u64..20),
        |(seg_frames, cut_start_pct, cut_len_pct)| {
            multi_segment_property(seg_frames, *cut_start_pct, *cut_len_pct)
        },
    );
}

/// Pinned regression (formerly `tests/proptests.proptest-regressions`):
/// a three-segment cut landing on a segment boundary once double-counted
/// the boundary unit. Shrunk input preserved verbatim.
#[test]
fn multi_segment_regression_boundary_cut() {
    multi_segment_property(&[107, 74, 73], 8, 6).unwrap();
}

#[test]
fn single_medium_delete_preserves_duration_multi() {
    check(
        "single_medium_delete_preserves_duration_multi",
        (prop_vec(60u64..300, 2..4), 0u64..70, 5u64..25),
        |(seg_frames, start_pct, len_pct)| {
            let rope = multi_rope(seg_frames);
            let dur = rope.duration();
            let iv = Interval::new(
                Nanos::from_nanos(dur.as_nanos() * start_pct / 100),
                Nanos::from_nanos(dur.as_nanos() * len_pct / 100),
            );
            let out = edit::delete(&rope, MediaSel::Audio, iv).unwrap();
            out.check_invariants().unwrap();
            prop_assert_eq!(out.duration(), dur, "blanking must not change length");
            // Video track untouched: same total video units.
            let vu = |r: &Rope| -> u64 {
                r.segments
                    .iter()
                    .filter_map(|s| s.video.map(|v| v.len_units))
                    .sum()
            };
            prop_assert_eq!(vu(&out), vu(&rope));
            Ok(())
        },
    );
}

// ---------- allocator constraints ----------

#[test]
fn constrained_allocator_always_honours_bounds() {
    check_with(
        &Config::with_cases(64),
        "constrained_allocator_always_honours_bounds",
        (0u64..128, 1u64..512, 1u64..48, 1usize..200, 0u64..1_000),
        |&(min_gap, extra, block, blocks, seed)| {
            let max_gap = min_gap + extra;
            let bounds = GapBounds {
                min_sectors: min_gap,
                max_sectors: max_gap,
            };
            let mut a = Allocator::new(
                1 << 20,
                AllocPolicy::Constrained {
                    bounds,
                    allow_wrap: false,
                },
                seed,
            );
            let mut prev = a.allocate_first(block).unwrap();
            for _ in 1..blocks {
                match a.allocate_after(prev, block) {
                    Ok(next) => {
                        let gap = next.start - prev.end();
                        prop_assert!(
                            bounds.admits(gap),
                            "gap {gap} outside [{min_gap},{max_gap}]"
                        );
                        prev = next;
                    }
                    Err(_) => break, // ran off the device without wrap: fine
                }
            }
            Ok(())
        },
    );
}

#[test]
fn freed_space_is_reusable() {
    check(
        "freed_space_is_reusable",
        (1usize..100, 1u64..32, 0u64..1_000),
        |&(blocks, block, seed)| {
            let mut a = Allocator::new(1 << 16, AllocPolicy::Random, seed);
            let mut held = Vec::new();
            for _ in 0..blocks {
                match a.allocate_anywhere(block) {
                    Ok(e) => held.push(e),
                    Err(_) => break,
                }
            }
            let used = a.freemap().used();
            prop_assert_eq!(used, held.len() as u64 * block);
            for e in held {
                a.release(e);
            }
            prop_assert_eq!(a.freemap().used(), 0);
            Ok(())
        },
    );
}

// ---------- admission monotonicity ----------

#[test]
fn admission_k_and_nmax_behave() {
    check(
        "admission_k_and_nmax_behave",
        (1.0f64..100.0, 0.05f64..1.0, 1u64..32, 8u64..2_000),
        |&(l_seek_ms, l_avg_frac, q, frame_kbit)| {
            let env = ServiceEnv {
                r_dt: BitRate::mbit_per_sec(60.0),
                l_seek_max: Seconds::from_millis(l_seek_ms),
                l_ds_avg: Seconds::from_millis(l_seek_ms * l_avg_frac),
            };
            let spec = RequestSpec {
                q,
                unit_bits: Bits::new(frame_kbit * 1_000),
                unit_rate: 30.0,
            };
            let agg = Aggregates::compute(&env, &[spec]).unwrap();
            let n_max = agg.n_max();
            // Feasibility boundary is exactly n_max.
            if n_max > 0 {
                prop_assert!(agg.k_transient(n_max).is_some());
            }
            prop_assert!(agg.k_transient(n_max + 1).is_none());
            // k is monotone and Eq.18 dominates Eq.16.
            let mut prev = 0u64;
            for n in 1..=n_max.min(20) {
                let ks = agg.k_steady(n).unwrap();
                let kt = agg.k_transient(n).unwrap();
                prop_assert!(kt >= ks);
                prop_assert!(kt >= prev);
                prev = kt;
                // And the feasibility predicates agree with the formulas.
                prop_assert!(agg.steady_feasible(n, ks));
                prop_assert!(agg.transient_feasible(n, kt));
            }
            Ok(())
        },
    );
}
