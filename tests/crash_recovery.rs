//! Exhaustive crash-point sweep: record a journaled scenario, crash at
//! **every** device-write index, power-cycle, remount through journal
//! recovery, and verify the crash-consistency invariants (prefix
//! recovery, durability floors, free-map coverage, fsck-clean,
//! writability). The harness itself lives in `strandfs_testkit::crash`
//! so the E14 bench section reports the same numbers; this test is the
//! tier-1 gate. `STRANDFS_TEST_SEED` reseeds the injector for chaos
//! runs.

use strandfs_testkit::crash::{baseline_marks, crash_once, sweep};

fn seed() -> u64 {
    std::env::var("STRANDFS_TEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5)
}

#[test]
fn every_crash_point_recovers_to_a_verified_prefix() {
    let s = sweep(seed());
    // One crash point per device write; every one verified inside the
    // harness (any violation panics with the crash index).
    assert_eq!(s.outcomes.len() as u64, s.writes);
    assert!(s.writes > 40, "scenario too small to exercise recovery");
    // The sweep must cover both directions of recovery. (A journaled
    // deletion's replay count is tear-length dependent — the one
    // seed-robust deletion fact, strand 1 staying deleted once its
    // record lands, is asserted inside the harness.)
    assert!(s.blocks_recovered > 0, "no crash point kept journaled work");
    assert!(s.blocks_rolled_back > 0, "no crash point rolled work back");
    assert!(s.completed_strands > 0, "no in-flight strand was completed");
    assert!(s.durable_strands > 0, "no committed strand survived");
}

#[test]
fn sweep_fingerprint_is_stable() {
    let a = sweep(seed());
    let b = sweep(seed());
    assert_eq!(a.fingerprint, b.fingerprint, "sweep images diverged");
    assert_eq!(a.recovery_ns_total, b.recovery_ns_total);
    assert_eq!(a.blocks_recovered, b.blocks_recovered);
}

#[test]
fn sweep_replays_byte_identically_under_one_seed() {
    let marks = baseline_marks(seed());
    // Spot-check three milestones rather than replaying the full sweep
    // twice: crash just before each durability boundary.
    for at in [marks.a_durable - 1, marks.c_deleted - 1, marks.total - 1] {
        let a = crash_once(at, seed(), &marks);
        let b = crash_once(at, seed(), &marks);
        assert_eq!(a.image_hash, b.image_hash, "crash {at} image diverged");
        assert_eq!(a.blocks_recovered, b.blocks_recovered);
        assert_eq!(a.blocks_rolled_back, b.blocks_rolled_back);
    }
}
