//! The concurrent retrieval architecture (Fig. 3 / Eq. 3) end to end:
//! a strand striped over a `p`-actuator array sustains what Eq. 3
//! promises, and the single-disk architectures cannot.

use strandfs::core::model::continuity::{
    concurrent_ok, max_frame_rate_concurrent, max_frame_rate_pipelined,
};
use strandfs::core::model::VideoStream;
use strandfs::disk::{AccessKind, DiskArray, DiskGeometry, Extent, SeekModel, StripedExtent};
use strandfs::units::{BitRate, Bits, FrameRate, Instant, Nanos, Seconds};

/// Stripe a 200-block strand over `p` disks, blocks placed contiguously
/// per disk (each member holds every p-th block).
fn striped_layout(array: &DiskArray, blocks: u64, sectors_per_block: u64) -> Vec<StripedExtent> {
    let mut next = vec![0u64; array.degree()];
    array.stripe_blocks(blocks, sectors_per_block, |disk, sectors| {
        let start = next[disk];
        next[disk] += sectors + 16; // small constrained gap
        Extent::new(start, sectors)
    })
}

#[test]
fn striped_reads_sustain_p_minus_1_blocks_per_period() {
    // HDTV-class demand on vintage-era members: one disk is hopeless,
    // four in parallel keep up.
    let geometry = DiskGeometry::vintage_1991();
    let p = 4usize;
    let mut array = DiskArray::new(p, geometry, SeekModel::vintage_1991());

    // A stream needing ~3x one member's bandwidth: blocks of 24 frames
    // at 96 kbit (2.3 Mbit/block), playback 100 ms at 240 fps...
    // equivalently q=3 at 30 fps per *stripe group*: each group of p
    // blocks covers p block-durations of media.
    let blocks = 200u64;
    let sectors_per_block = 72; // ~36 KB, transfer ≈ 21 ms on one member
    let layout = striped_layout(&array, blocks, sectors_per_block);

    // Issue stripe groups back to back and measure the sustained rate.
    let mut t = Instant::EPOCH;
    let mut total_sectors = 0u64;
    for group in &layout {
        let (_ops, done) = array.access_striped(t, group, AccessKind::Read);
        total_sectors += group.total_sectors();
        t = done;
    }
    let elapsed = (t - Instant::EPOCH).as_secs_f64();
    let measured = BitRate::bytes_per_sec(total_sectors as f64 * 512.0 / elapsed);
    let single = array.disk(0).geometry().track_transfer_rate();
    assert!(
        measured.get() > 2.0 * single.get(),
        "parallel array must beat 2x a single member: {measured} vs {single}"
    );
    assert!(
        measured.get() < p as f64 * single.get() * 1.01,
        "cannot exceed aggregate: {measured}"
    );
}

#[test]
fn eq3_predicts_the_striped_array() {
    // Eq. 3's analytic rate matches what the simulated array sustains,
    // to within the positioning-estimate slack.
    let geometry = DiskGeometry::vintage_1991();
    let p = 4u32;
    let mut array = DiskArray::new(p as usize, geometry, SeekModel::vintage_1991());
    let stream = VideoStream {
        q: 3,
        s: Bits::new(96_000),
        rate: FrameRate::NTSC,
        r_vd: BitRate::mbit_per_sec(138.0),
    };
    let r_dt = geometry.track_transfer_rate();
    let l_ds = Seconds::from_millis(15.0);

    // Analytic: with p concurrent accesses, frames up to this rate hold.
    let fps_concurrent = max_frame_rate_concurrent(&stream, r_dt, l_ds, p).unwrap();
    let fps_pipelined = max_frame_rate_pipelined(&stream, r_dt, l_ds).unwrap();
    assert!(fps_concurrent > 2.5 * fps_pipelined);

    // Empirical: play back stripe groups and check the block period the
    // array actually sustains, i.e. time per group / p blocks.
    let blocks = 120u64;
    let layout = striped_layout(&array, blocks, 72);
    let mut t = Instant::EPOCH;
    for group in &layout {
        let (_ops, done) = array.access_striped(t, group, AccessKind::Read);
        t = done;
    }
    let per_block = (t - Instant::EPOCH).as_secs_f64() / blocks as f64;
    let sustained_fps = stream.q as f64 / per_block;
    // The measured array should sustain at least the pipelined
    // single-disk bound times (p-1) within 25% (scheduling slack,
    // rotation variance).
    assert!(
        sustained_fps > fps_pipelined * (p - 1) as f64 * 0.75,
        "sustained {sustained_fps:.1} fps vs pipelined bound {fps_pipelined:.1}"
    );
    // Eq. 3 is tight at its own bound...
    let at_bound = VideoStream {
        rate: FrameRate::per_sec(fps_concurrent),
        ..stream
    };
    assert!(concurrent_ok(&at_bound, r_dt, l_ds, p));
    let above = VideoStream {
        rate: FrameRate::per_sec(fps_concurrent * 1.01),
        ..stream
    };
    assert!(!concurrent_ok(&above, r_dt, l_ds, p));
    // ...and the measured layout (whose gaps are far smaller than the
    // analytic 15 ms) sustains at least that bound.
    assert!(
        sustained_fps > fps_concurrent * 0.9,
        "sustained {sustained_fps:.1} vs Eq.3 bound {fps_concurrent:.1}"
    );
}

#[test]
fn spindle_parallelism_is_real_not_additive_time() {
    let mut array = DiskArray::new(8, DiskGeometry::tiny_test(), SeekModel::vintage_1991());
    let group = StripedExtent {
        stripes: (0..8).map(|i| (i, Extent::new(64, 8))).collect(),
    };
    let (ops, done) = array.access_striped(Instant::EPOCH, &group, AccessKind::Read);
    let serial: Nanos = ops.iter().map(|o| o.service_time()).sum();
    let parallel = done - Instant::EPOCH;
    assert!(
        parallel.as_nanos() * 4 < serial.as_nanos(),
        "8-way stripe must be at least 4x faster than serial ({parallel} vs {serial})"
    );
}
