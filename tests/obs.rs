//! Properties of the observability layer.
//!
//! The central contract: attaching a recorder never changes what the
//! system does. A run with a ring recorder must produce a bit-identical
//! [`SimReport`] (and disk busy time) to the same run with the default
//! no-op sink, and the recorded per-op timing decomposition must sum
//! back to the disk's actual service time.

use strandfs::core::mrs::{compile_schedule, Mrs};
use strandfs::core::msm::{Msm, MsmConfig};
use strandfs::core::rope::edit::{Interval, MediaSel};
use strandfs::disk::{DiskGeometry, GapBounds, SeekModel, SimDisk};
use strandfs::obs::{Event, MonitorConfig, ObsSink, ProfSink, SloRule, WindowedMonitor, PHASES};
use strandfs::sim::playback::{simulate_playback, PlaybackConfig};
use strandfs::sim::{record_clip, ClipSpec, SimReport};
use strandfs::units::Nanos;

/// One deterministic end-to-end session — record two A/V clips, play
/// both — with the given sink attached from the very first write.
fn session(obs: ObsSink) -> (SimReport, Nanos) {
    let disk = SimDisk::new(DiskGeometry::vintage_1991(), SeekModel::vintage_1991());
    let mut mrs = Mrs::new(Msm::new(
        disk,
        MsmConfig::constrained(
            GapBounds {
                min_sectors: 0,
                max_sectors: 40_000,
            },
            1,
        ),
    ));
    mrs.set_obs(obs);
    let ropes: Vec<_> = (0..2)
        .map(|i| {
            record_clip(&mut mrs, &ClipSpec::av_seconds(2.0).with_seed(i)).expect("record clip")
        })
        .collect();
    let scheds = ropes
        .iter()
        .map(|r| {
            let rope = mrs.rope(*r).unwrap().clone();
            let mut s =
                compile_schedule(&rope, MediaSel::Both, Interval::whole(rope.duration())).unwrap();
            mrs.resolve_silence(&mut s).unwrap();
            s
        })
        .collect();
    let report = simulate_playback(&mut mrs, scheds, PlaybackConfig::with_k(2)).expect("simulate");
    let busy = mrs.msm().disk().stats().busy_time();
    (report, busy)
}

#[test]
fn recording_perturbs_nothing() {
    let (baseline, baseline_busy) = session(ObsSink::noop());
    let (sink, rec) = ObsSink::ring(1 << 18);
    let (traced, traced_busy) = session(sink);
    assert_eq!(baseline, traced, "recorder changed the simulation");
    assert_eq!(baseline_busy, traced_busy, "recorder changed disk timing");
    let r = rec.borrow();
    assert!(!r.is_empty(), "instrumented run recorded nothing");
    assert_eq!(r.dropped(), 0, "ring too small for this session");
}

#[test]
fn monitoring_and_profiling_perturb_nothing() {
    let (baseline, baseline_busy) = session(ObsSink::noop());

    // The full live-health stack: windowed fold + SLO rules + flight
    // ring, with the service-loop profiler armed alongside.
    let monitor = std::rc::Rc::new(std::cell::RefCell::new(WindowedMonitor::new(
        MonitorConfig::rounds(2).rule(SloRule::BurnRate {
            label: "miss-burn",
            short_windows: 1,
            long_windows: 2,
            short_rate: 0.5,
            long_rate: 0.25,
        }),
    )));
    let (prof_sink, profiler) = ProfSink::fresh();
    strandfs::sim::set_profiler(prof_sink);
    let (monitored, monitored_busy) = session(ObsSink::shared(&monitor));
    strandfs::sim::set_profiler(ProfSink::noop());
    monitor.borrow_mut().finish();

    assert_eq!(baseline, monitored, "monitor changed the simulation");
    assert_eq!(baseline_busy, monitored_busy, "monitor changed disk timing");

    // The monitor actually watched the run: the fold closed at least
    // one window and attributed events to it.
    let m = monitor.borrow();
    assert!(m.windows().count() > 0, "monitor closed no windows");
    assert!(m.windows().any(|w| w.events > 0));
    // This healthy session must never alert.
    assert!(m.alerts().is_empty(), "healthy run raised {:?}", m.alerts());
    assert!(m.dumps().is_empty());

    // The profiler attributed wall-clock spans to every loop phase.
    let p = profiler.borrow();
    for phase in PHASES {
        assert!(
            p.stats(phase).spans > 0,
            "phase {} recorded no spans",
            phase.label()
        );
    }
}

#[test]
fn per_op_components_sum_to_service_time() {
    let (sink, rec) = ObsSink::ring(1 << 18);
    let (_report, busy) = session(sink);
    let r = rec.borrow();
    assert_eq!(r.dropped(), 0);
    let mut total = Nanos::ZERO;
    let mut ops = 0u64;
    for e in r.events() {
        if let Event::DiskOp {
            seek,
            rotation,
            transfer,
            ..
        } = e
        {
            assert_eq!(e.service_time(), *seek + *rotation + *transfer);
            total += e.service_time();
            ops += 1;
        }
    }
    assert!(ops > 0);
    // The decomposed per-op times reconstruct the disk's own busy-time
    // accounting exactly.
    assert_eq!(total, busy);
    assert_eq!(r.disk_service_total(), busy);
}
