//! The fsx gate: seeded random rope-editing exerciser with model
//! checking (`strandfs_testkit::fsx`), run three ways —
//!
//! 1. byte-reproducibility of a fixed seed (same op log hash, same
//!    final device image hash),
//! 2. a 500+-op sequence composed with a fault plan *and* a crash
//!    point: model-check at every step, Eq. 19/20 copy-bound
//!    enforcement at every healed boundary, fsck-clean remount, and
//!    prefix-consistent recovery,
//! 3. a bounded chaos pass driven by `STRANDFS_TEST_SEED` /
//!    `STRANDFS_FSX_OPS` (the tier-1 entry; any failure panics with
//!    the replay seed).

use strandfs_disk::{CrashPoint, FaultPlan};
use strandfs_testkit::fsx::{run, FsxConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[test]
fn fixed_seed_is_byte_reproducible() {
    let cfg = FsxConfig::healthy(11, 120);
    let a = run(&cfg);
    let b = run(&cfg);
    assert_eq!(a, b, "same seed must give same op log and same image");
    assert!(a.ops_applied > 40, "op mix too thin: {a:?}");
    assert!(a.verifies > 0 && a.cells_checked > 10_000);
}

#[test]
fn long_run_with_faults_and_crash_point_recovers() {
    // ≥ 1 fault plan (random read transients) composed with ≥ 1 crash
    // point, over a 500+-op sequence. The transients exercise the
    // retry path under continuous model checking; the crash point ends
    // the run in a power-cycle + journal recovery + convergent fsck +
    // write-intent prefix verification.
    // With seed 23 the stream issues ~81k sector writes over its first
    // 520 ops and ~93k over 600, so an 85k threshold fires shortly past
    // op 520, well inside the 700-op budget.
    let plan = FaultPlan::clean()
        .with_random_transients(0.002, 1)
        .with_crash_point(CrashPoint::AfterWrites(85_000));
    let cfg = FsxConfig::healthy(23, 700).with_plan(plan);
    let out = run(&cfg);
    assert!(out.ops_attempted >= 500, "crashed too early: {out:?}");
    assert!(out.edits >= 50, "edit mix too thin: {out:?}");
    assert!(
        out.boundaries_healed > 0,
        "no boundary healing exercised: {out:?}"
    );
    assert!(
        out.max_copied_per_boundary <= out.max_bound_seen,
        "copy bound violated: {out:?}"
    );
    assert!(out.gc_runs > 0 && out.play_cycles > 0);
    assert!(out.crashed, "crash point never fired: {out:?}");
    let rec = out.recovery.expect("crashed run must recover");
    assert!(
        rec.prefix_verified_strands > 0,
        "recovery verified no strand against its write intent: {rec:?}"
    );
}

#[test]
fn chaos_pass_bounded_by_env() {
    let seed = env_u64("STRANDFS_TEST_SEED", 0x5374_7261_6e64_4653);
    let ops = env_u64("STRANDFS_FSX_OPS", 80);
    let plan = FaultPlan::clean().with_random_transients(0.001, 1);
    let out = run(&FsxConfig::healthy(seed, ops).with_plan(plan));
    // Replay any failure with STRANDFS_TEST_SEED=<seed> (the panic
    // message embeds it); here the run completing is the assertion.
    assert_eq!(out.ops_attempted, ops);
}
