//! Tier-1 cluster failover smoke: one bounded kill-one-member run on a
//! two-volume cluster with a replicated title, seeded from
//! `STRANDFS_TEST_SEED` (the seed is logged; replay any failure with
//! the printed value). The contract checked is the cluster layer's
//! headline guarantee: a stream of a 2-replicated title survives the
//! loss of the member it is playing from with zero dropped blocks and
//! a read-ahead-bounded glitch, and the member rejoins fsck-clean with
//! a reconciled catalog.

use strandfs::cluster::{
    simulate_cluster, Cluster, ClusterAction, ClusterConfig, ClusterPlayback, MemberState,
    ScriptedAction,
};
use strandfs::sim::ClipSpec;
use strandfs::units::Instant;
use strandfs_testkit::prop::Config;

#[test]
fn replicated_title_survives_a_seeded_member_kill() {
    let seed = Config::from_env().seed;
    eprintln!(
        "cluster failover smoke: replay with STRANDFS_TEST_SEED={seed} \
         cargo test -q --test cluster_failover"
    );
    let volumes = 2;
    let victim = (seed % volumes as u64) as usize;
    let kill_round = 1 + seed % 3;
    let rejoin_round = kill_round + 3;

    let mut c = Cluster::new(ClusterConfig {
        base_replicas: 2,
        ..ClusterConfig::round_robin(volumes, seed)
    })
    .expect("cluster");
    let id = c
        .ingest("title", &ClipSpec::video_seconds(2.0).with_seed(5), 1.0)
        .expect("ingest");
    // Viewer i starts on replica i % 2, so each member serves one of
    // the two viewers — whichever member dies, a stream fails over.
    let script = [
        ScriptedAction {
            at_round: kill_round,
            action: ClusterAction::Kill(victim),
        },
        ScriptedAction {
            at_round: rejoin_round,
            action: ClusterAction::Rejoin(victim),
        },
    ];
    let cfg = ClusterPlayback::with_k(3);
    let report = simulate_cluster(&mut c, &[id, id], &script, &cfg).expect("simulate");

    assert_eq!(
        report.replicated_dropped(),
        0,
        "failover lost blocks (seed {seed}, victim {victim}, kill round {kill_round})"
    );
    assert!(
        report.failovers >= 1,
        "the kill must force a failover (seed {seed})"
    );
    assert!(
        report.replicated_miss_burst() <= cfg.read_ahead + 1,
        "glitch {} exceeds the read-ahead bound (seed {seed})",
        report.replicated_miss_burst()
    );
    for s in &report.sim.streams {
        assert_eq!(s.blocks, s.fetched + s.dropped_blocks, "seed {seed}");
    }
    // The victim came back clean: journal replay + fsck found nothing,
    // the catalog lost nothing, and the member serves again.
    let rejoin = &report.rejoins[0];
    assert_eq!(rejoin.volume, victim);
    assert_eq!(rejoin.fsck_findings, 0, "seed {seed}");
    assert_eq!(rejoin.reconcile.lost, 0, "seed {seed}");
    assert_eq!(c.members()[victim].state(), MemberState::Up);
    assert!(
        c.fsck_member(victim, Instant::from_nanos(u64::MAX / 2))
            .clean(),
        "rejoined member must be fsck-clean (seed {seed})"
    );
}
