//! Tier-1 cluster failover smoke: one bounded kill-one-member run on a
//! two-volume cluster with a replicated title, seeded from
//! `STRANDFS_TEST_SEED` (the seed is logged; replay any failure with
//! the printed value). The contract checked is the cluster layer's
//! headline guarantee: a stream of a 2-replicated title survives the
//! loss of the member it is playing from with zero dropped blocks and
//! a read-ahead-bounded glitch, and the member rejoins fsck-clean with
//! a reconciled catalog.

use strandfs::cluster::{
    simulate_cluster, Cluster, ClusterAction, ClusterConfig, ClusterPlayback, MemberState,
    Placement, ScriptedAction,
};
use strandfs::sim::ClipSpec;
use strandfs::units::Instant;
use strandfs_testkit::prop::Config;

#[test]
fn replicated_title_survives_a_seeded_member_kill() {
    let seed = Config::from_env().seed;
    eprintln!(
        "cluster failover smoke: replay with STRANDFS_TEST_SEED={seed} \
         cargo test -q --test cluster_failover"
    );
    let volumes = 2;
    let victim = (seed % volumes as u64) as usize;
    let kill_round = 1 + seed % 3;
    let rejoin_round = kill_round + 3;

    let mut c = Cluster::new(ClusterConfig {
        base_replicas: 2,
        ..ClusterConfig::round_robin(volumes, seed)
    })
    .expect("cluster");
    let id = c
        .ingest("title", &ClipSpec::video_seconds(2.0).with_seed(5), 1.0)
        .expect("ingest");
    // Viewer i starts on replica i % 2, so each member serves one of
    // the two viewers — whichever member dies, a stream fails over.
    let script = [
        ScriptedAction {
            at_round: kill_round,
            action: ClusterAction::Kill(victim),
        },
        ScriptedAction {
            at_round: rejoin_round,
            action: ClusterAction::Rejoin(victim),
        },
    ];
    let cfg = ClusterPlayback::with_k(3);
    let report = simulate_cluster(&mut c, &[id, id], &script, &cfg).expect("simulate");

    assert_eq!(
        report.replicated_dropped(),
        0,
        "failover lost blocks (seed {seed}, victim {victim}, kill round {kill_round})"
    );
    assert!(
        report.failovers >= 1,
        "the kill must force a failover (seed {seed})"
    );
    assert!(
        report.replicated_miss_burst() <= cfg.read_ahead + 1,
        "glitch {} exceeds the read-ahead bound (seed {seed})",
        report.replicated_miss_burst()
    );
    for s in &report.sim.streams {
        assert_eq!(s.blocks, s.fetched + s.dropped_blocks, "seed {seed}");
    }
    // The victim came back clean: journal replay + fsck found nothing,
    // the catalog lost nothing, and the member serves again.
    let rejoin = &report.rejoins[0];
    assert_eq!(rejoin.volume, victim);
    assert_eq!(rejoin.fsck_findings, 0, "seed {seed}");
    assert_eq!(rejoin.reconcile.lost, 0, "seed {seed}");
    assert_eq!(c.members()[victim].state(), MemberState::Up);
    assert!(
        c.fsck_member(victim, Instant::from_nanos(u64::MAX / 2))
            .clean(),
        "rejoined member must be fsck-clean (seed {seed})"
    );
}

#[test]
fn least_loaded_placement_is_deterministic_across_identical_runs() {
    let seed = Config::from_env().seed;
    eprintln!(
        "placement determinism smoke: replay with STRANDFS_TEST_SEED={seed} \
         cargo test -q --test cluster_failover"
    );
    // Slack ties are the dangerous case: a fresh symmetric cluster has
    // identical Eq. 18 slack on every volume, so only the stable
    // placed-then-volume-id tie-break keeps two identical runs from
    // diverging. Ingest the same mix twice and pin the layouts equal.
    let layout = |seed: u64| -> Vec<Vec<usize>> {
        let mut c = Cluster::new(ClusterConfig {
            base_replicas: 2,
            placement: Placement::LeastLoaded,
            ..ClusterConfig::round_robin(3, seed)
        })
        .expect("cluster");
        for (i, secs) in [0.6, 0.4, 0.8, 0.4].iter().enumerate() {
            c.ingest(
                "title",
                &ClipSpec::video_seconds(*secs).with_seed(seed ^ i as u64),
                0.5,
            )
            .expect("ingest");
        }
        c.catalog()
            .titles()
            .iter()
            .map(|t| t.replicas.iter().map(|r| r.volume).collect())
            .collect()
    };
    let a = layout(seed);
    let b = layout(seed);
    assert_eq!(a, b, "identical runs must place identically (seed {seed})");
    // The first title lands on a fully symmetric cluster: the
    // tie-break pins it to the lowest volume ids, ascending.
    assert_eq!(a[0], vec![0, 1], "seed {seed}");
    // Every replica pair is on distinct volumes.
    for (t, replicas) in a.iter().enumerate() {
        assert_eq!(replicas.len(), 2, "title {t} (seed {seed})");
        assert_ne!(replicas[0], replicas[1], "title {t} (seed {seed})");
    }
}
