//! Fast-forward, slow motion, heterogeneous blocks and strand
//! reorganization — the paper's §3.3.2 / §3.3.3 / §6.2 features,
//! exercised end to end.

use strandfs::core::mrs::{apply_play_mode, compile_schedule};
use strandfs::core::rope::edit::{Interval, MediaSel};
use strandfs::core::strand::hetero::HeteroBlock;
use strandfs::core::strand::StrandMeta;
use strandfs::media::Medium;
use strandfs::sim::playback::{simulate_playback, PlaybackConfig};
use strandfs::sim::{standard_volume, ClipSpec};
use strandfs::units::{Bits, Instant, Nanos};

#[test]
fn fast_forward_with_skip_stays_continuous_at_normal_k() {
    // 2× FF with skipping fetches at the normal rate; the same k that
    // sustains normal playback sustains it.
    let (mut mrs, ropes) = standard_volume(&[ClipSpec::video_seconds(8.0)]).expect("build volume");
    let rope = mrs.rope(ropes[0]).unwrap().clone();
    let base = compile_schedule(&rope, MediaSel::Video, Interval::whole(rope.duration())).unwrap();
    let mut ff = apply_play_mode(&base, 2.0, true);
    mrs.resolve_silence(&mut ff).unwrap();
    assert_eq!(ff.items.len(), base.items.len() / 2);
    let report =
        simulate_playback(&mut mrs, vec![ff], PlaybackConfig::with_k(2)).expect("simulate");
    assert!(report.all_continuous());
}

#[test]
fn fast_forward_without_skip_needs_more_bandwidth() {
    // At 4× without skipping on the vintage disk (block transfer
    // ≈ 20.6 ms vs a 25 ms accelerated deadline), continuity collapses;
    // the same clip at 1× is clean. This is the paper's asymmetry
    // between the two fast-forward flavours.
    let (mut mrs, ropes) = standard_volume(&[ClipSpec::video_seconds(8.0)]).expect("build volume");
    let rope = mrs.rope(ropes[0]).unwrap().clone();
    let base = compile_schedule(&rope, MediaSel::Video, Interval::whole(rope.duration())).unwrap();

    let mut normal = base.clone();
    mrs.resolve_silence(&mut normal).unwrap();
    let ok =
        simulate_playback(&mut mrs, vec![normal], PlaybackConfig::with_k(2)).expect("simulate");
    assert!(ok.all_continuous());

    let mut ff4 = apply_play_mode(&base, 4.0, false);
    mrs.resolve_silence(&mut ff4).unwrap();
    let report = simulate_playback(
        &mut mrs,
        vec![ff4],
        PlaybackConfig {
            read_ahead: 2,
            ..PlaybackConfig::with_k(2)
        },
    )
    .expect("simulate");
    assert!(
        report.total_violations() > 0,
        "4x no-skip should overwhelm the vintage disk"
    );
}

#[test]
fn slow_motion_accumulates_buffers() {
    // §3.3.2: when blocks are displayed slower than retrieved, media
    // accumulates in buffers — the open-loop simulator measures the
    // accumulation directly.
    let (mut mrs, ropes) = standard_volume(&[ClipSpec::video_seconds(8.0)]).expect("build volume");
    let rope = mrs.rope(ropes[0]).unwrap().clone();
    let base = compile_schedule(&rope, MediaSel::Video, Interval::whole(rope.duration())).unwrap();
    let mut normal = base.clone();
    mrs.resolve_silence(&mut normal).unwrap();
    let normal_report =
        simulate_playback(&mut mrs, vec![normal], PlaybackConfig::with_k(2)).expect("simulate");

    let mut slow = apply_play_mode(&base, 0.25, false);
    mrs.resolve_silence(&mut slow).unwrap();
    let slow_report =
        simulate_playback(&mut mrs, vec![slow], PlaybackConfig::with_k(2)).expect("simulate");
    assert!(slow_report.all_continuous());
    assert!(
        slow_report.streams[0].max_buffered > normal_report.streams[0].max_buffered,
        "slow motion must accumulate ({} vs {})",
        slow_report.streams[0].max_buffered,
        normal_report.streams[0].max_buffered
    );
}

#[test]
fn heterogeneous_blocks_store_and_separate_through_msm() {
    // §3.3.3: one disk block carries both media; a single fetch yields
    // implicit synchronization.
    let (mut mrs, _ropes) = standard_volume(&[]).expect("build volume");
    let msm = mrs.msm_mut();
    let meta = StrandMeta {
        medium: Medium::Video, // video paces a heterogeneous strand
        unit_rate: 30.0,
        granularity: 3,
        unit_bits: Bits::new(96_000 + 800 * 8 / 3 + 64),
    };
    let id = msm.begin_strand(meta);
    let mut t = Instant::EPOCH;
    let mut originals = Vec::new();
    for i in 0..20u64 {
        let block = HeteroBlock {
            video: vec![i as u8; 36_000],
            audio: vec![(i * 2) as u8; 800],
        };
        let (_, op) = msm.append_block(id, t, &block.encode(), 3).unwrap();
        t = op.completed;
        originals.push(block);
    }
    msm.finish_strand(id, t).unwrap();
    for (i, original) in originals.iter().enumerate() {
        let (payload, _) = msm.read_block(id, i as u64, t).unwrap();
        let decoded = HeteroBlock::decode(&payload.unwrap()).unwrap();
        assert_eq!(&decoded, original, "block {i}");
    }
}

#[test]
fn reorganized_volume_still_plays() {
    let (mut mrs, ropes) = standard_volume(&[ClipSpec::av_seconds(4.0)]).expect("build volume");
    let rope = mrs.rope(ropes[0]).unwrap().clone();
    let video_strand = rope.segments[0].video.unwrap().strand;
    let audio_strand = rope.segments[0].audio.unwrap().strand;
    let new_video = mrs.reorganize_strand(video_strand, Instant::EPOCH).unwrap();
    let new_audio = mrs.reorganize_strand(audio_strand, Instant::EPOCH).unwrap();
    assert_ne!(new_video, video_strand);
    assert_ne!(new_audio, audio_strand);
    // Audio silence holes survive reorganization.
    let s = mrs.msm().strand(new_audio).unwrap();
    assert!(s.silence_fraction() > 0.0);
    // Playback still continuous.
    let rope = mrs.rope(ropes[0]).unwrap().clone();
    let mut sched =
        compile_schedule(&rope, MediaSel::Both, Interval::whole(rope.duration())).unwrap();
    mrs.resolve_silence(&mut sched).unwrap();
    let report =
        simulate_playback(&mut mrs, vec![sched], PlaybackConfig::with_k(2)).expect("simulate");
    assert!(report.all_continuous());
}

#[test]
fn skip_deadline_spacing_is_block_duration() {
    let (mrs, ropes) = standard_volume(&[ClipSpec::video_seconds(4.0)]).expect("build volume");
    let rope = mrs.rope(ropes[0]).unwrap().clone();
    let base = compile_schedule(&rope, MediaSel::Video, Interval::whole(rope.duration())).unwrap();
    for speed in [2.0, 3.0, 4.0] {
        let ff = apply_play_mode(&base, speed, true);
        for w in ff.items.windows(2) {
            assert_eq!(
                w[1].at - w[0].at,
                Nanos::from_millis(100),
                "speed {speed}: fetch cadence must stay one block duration"
            );
        }
    }
}
