//! Fast-forward, slow motion, heterogeneous blocks and strand
//! reorganization — the paper's §3.3.2 / §3.3.3 / §6.2 features,
//! exercised end to end.

use strandfs::core::mrs::{apply_play_mode, compile_schedule};
use strandfs::core::rope::edit::{Interval, MediaSel};
use strandfs::core::strand::hetero::HeteroBlock;
use strandfs::core::strand::StrandMeta;
use strandfs::media::Medium;
use strandfs::sim::playback::{simulate_playback, PlaybackConfig};
use strandfs::sim::{standard_volume, ClipSpec};
use strandfs::units::{Bits, Instant, Nanos};

#[test]
fn fast_forward_with_skip_stays_continuous_at_normal_k() {
    // 2× FF with skipping fetches at the normal rate; the same k that
    // sustains normal playback sustains it.
    let (mut mrs, ropes) = standard_volume(&[ClipSpec::video_seconds(8.0)]).expect("build volume");
    let rope = mrs.rope(ropes[0]).unwrap().clone();
    let base = compile_schedule(&rope, MediaSel::Video, Interval::whole(rope.duration())).unwrap();
    let mut ff = apply_play_mode(&base, 2.0, true);
    mrs.resolve_silence(&mut ff).unwrap();
    assert_eq!(ff.items.len(), base.items.len() / 2);
    let report =
        simulate_playback(&mut mrs, vec![ff], PlaybackConfig::with_k(2)).expect("simulate");
    assert!(report.all_continuous());
}

#[test]
fn fast_forward_without_skip_needs_more_bandwidth() {
    // At 4× without skipping on the vintage disk (block transfer
    // ≈ 20.6 ms vs a 25 ms accelerated deadline), continuity collapses;
    // the same clip at 1× is clean. This is the paper's asymmetry
    // between the two fast-forward flavours.
    let (mut mrs, ropes) = standard_volume(&[ClipSpec::video_seconds(8.0)]).expect("build volume");
    let rope = mrs.rope(ropes[0]).unwrap().clone();
    let base = compile_schedule(&rope, MediaSel::Video, Interval::whole(rope.duration())).unwrap();

    let mut normal = base.clone();
    mrs.resolve_silence(&mut normal).unwrap();
    let ok =
        simulate_playback(&mut mrs, vec![normal], PlaybackConfig::with_k(2)).expect("simulate");
    assert!(ok.all_continuous());

    let mut ff4 = apply_play_mode(&base, 4.0, false);
    mrs.resolve_silence(&mut ff4).unwrap();
    let report = simulate_playback(
        &mut mrs,
        vec![ff4],
        PlaybackConfig {
            read_ahead: 2,
            ..PlaybackConfig::with_k(2)
        },
    )
    .expect("simulate");
    assert!(
        report.total_violations() > 0,
        "4x no-skip should overwhelm the vintage disk"
    );
}

#[test]
fn slow_motion_accumulates_buffers() {
    // §3.3.2: when blocks are displayed slower than retrieved, media
    // accumulates in buffers — the open-loop simulator measures the
    // accumulation directly.
    let (mut mrs, ropes) = standard_volume(&[ClipSpec::video_seconds(8.0)]).expect("build volume");
    let rope = mrs.rope(ropes[0]).unwrap().clone();
    let base = compile_schedule(&rope, MediaSel::Video, Interval::whole(rope.duration())).unwrap();
    let mut normal = base.clone();
    mrs.resolve_silence(&mut normal).unwrap();
    let normal_report =
        simulate_playback(&mut mrs, vec![normal], PlaybackConfig::with_k(2)).expect("simulate");

    let mut slow = apply_play_mode(&base, 0.25, false);
    mrs.resolve_silence(&mut slow).unwrap();
    let slow_report =
        simulate_playback(&mut mrs, vec![slow], PlaybackConfig::with_k(2)).expect("simulate");
    assert!(slow_report.all_continuous());
    assert!(
        slow_report.streams[0].max_buffered > normal_report.streams[0].max_buffered,
        "slow motion must accumulate ({} vs {})",
        slow_report.streams[0].max_buffered,
        normal_report.streams[0].max_buffered
    );
}

#[test]
fn heterogeneous_blocks_store_and_separate_through_msm() {
    // §3.3.3: one disk block carries both media; a single fetch yields
    // implicit synchronization.
    let (mut mrs, _ropes) = standard_volume(&[]).expect("build volume");
    let msm = mrs.msm_mut();
    let meta = StrandMeta {
        medium: Medium::Video, // video paces a heterogeneous strand
        unit_rate: 30.0,
        granularity: 3,
        unit_bits: Bits::new(96_000 + 800 * 8 / 3 + 64),
    };
    let id = msm.begin_strand(meta);
    let mut t = Instant::EPOCH;
    let mut originals = Vec::new();
    for i in 0..20u64 {
        let block = HeteroBlock {
            video: vec![i as u8; 36_000],
            audio: vec![(i * 2) as u8; 800],
        };
        let (_, op) = msm.append_block(id, t, &block.encode(), 3).unwrap();
        t = op.completed;
        originals.push(block);
    }
    msm.finish_strand(id, t).unwrap();
    for (i, original) in originals.iter().enumerate() {
        let (payload, _) = msm.read_block(id, i as u64, t).unwrap();
        let decoded = HeteroBlock::decode(&payload.unwrap()).unwrap();
        assert_eq!(&decoded, original, "block {i}");
    }
}

#[test]
fn reorganized_volume_still_plays() {
    let (mut mrs, ropes) = standard_volume(&[ClipSpec::av_seconds(4.0)]).expect("build volume");
    let rope = mrs.rope(ropes[0]).unwrap().clone();
    let video_strand = rope.segments[0].video.unwrap().strand;
    let audio_strand = rope.segments[0].audio.unwrap().strand;
    let new_video = mrs.reorganize_strand(video_strand, Instant::EPOCH).unwrap();
    let new_audio = mrs.reorganize_strand(audio_strand, Instant::EPOCH).unwrap();
    assert_ne!(new_video, video_strand);
    assert_ne!(new_audio, audio_strand);
    // Audio silence holes survive reorganization.
    let s = mrs.msm().strand(new_audio).unwrap();
    assert!(s.silence_fraction() > 0.0);
    // Playback still continuous.
    let rope = mrs.rope(ropes[0]).unwrap().clone();
    let mut sched =
        compile_schedule(&rope, MediaSel::Both, Interval::whole(rope.duration())).unwrap();
    mrs.resolve_silence(&mut sched).unwrap();
    let report =
        simulate_playback(&mut mrs, vec![sched], PlaybackConfig::with_k(2)).expect("simulate");
    assert!(report.all_continuous());
}

#[test]
fn skip_deadline_spacing_is_block_duration() {
    let (mrs, ropes) = standard_volume(&[ClipSpec::video_seconds(4.0)]).expect("build volume");
    let rope = mrs.rope(ropes[0]).unwrap().clone();
    let base = compile_schedule(&rope, MediaSel::Video, Interval::whole(rope.duration())).unwrap();
    for speed in [2.0, 3.0, 4.0] {
        let ff = apply_play_mode(&base, speed, true);
        for w in ff.items.windows(2) {
            assert_eq!(
                w[1].at - w[0].at,
                Nanos::from_millis(100),
                "speed {speed}: fetch cadence must stay one block duration"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Destructive pause / resume interacting with concurrent playback
// (§"PAUSE/RESUME": a destructive pause releases its admission slots to
// other clients; RESUME re-runs admission and may lose them).
// ---------------------------------------------------------------------

#[test]
fn destructive_pause_frees_slots_a_concurrent_stream_can_take() {
    use strandfs::core::FsError;

    let (mut mrs, ropes) = standard_volume(&[ClipSpec::av_seconds(3.0)]).expect("build volume");
    let rope = ropes[0];
    let dur = mrs.rope(rope).unwrap().duration();
    let iv = Interval::whole(dur);
    // Saturate admission with concurrent plays of the same rope.
    let mut live = Vec::new();
    loop {
        match mrs.play("sim", rope, MediaSel::Both, iv) {
            Ok((req, _)) => live.push(req),
            Err(FsError::AdmissionRejected { .. }) => break,
            Err(e) => panic!("unexpected {e}"),
        }
        assert!(live.len() < 200, "admission never rejected");
    }
    let victim = live.pop().expect("server admitted at least one stream");
    // A non-destructive pause keeps the reservation: still full.
    mrs.pause(victim, false).unwrap();
    assert!(matches!(
        mrs.play("sim", rope, MediaSel::Both, iv),
        Err(FsError::AdmissionRejected { .. })
    ));
    mrs.resume(victim).unwrap();
    // A destructive pause frees the slots: an interloper is admitted.
    mrs.pause(victim, true).unwrap();
    let (interloper, _) = mrs
        .play("sim", rope, MediaSel::Both, iv)
        .expect("released slots must be admittable");
    // The victim's RESUME re-runs admission — and loses while the
    // interloper holds the capacity…
    assert!(matches!(
        mrs.resume(victim),
        Err(FsError::AdmissionRejected { .. })
    ));
    // …but the session survives the failed resume, still paused.
    let (_, _, _, paused) = mrs.play_info(victim).unwrap();
    assert!(paused, "failed RESUME must leave the session paused");
    // Once the interloper stops, the resume goes through.
    mrs.stop(interloper, Instant::EPOCH).unwrap();
    mrs.resume(victim).unwrap();
    let (_, _, _, paused) = mrs.play_info(victim).unwrap();
    assert!(!paused);
    for r in live {
        mrs.stop(r, Instant::EPOCH).unwrap();
    }
    mrs.stop(victim, Instant::EPOCH).unwrap();
}

#[test]
fn interloper_playback_is_continuous_while_victim_paused() {
    // The freed slots are genuinely usable: while the victim is
    // destructively paused, the interloper's stream plays end-to-end
    // continuously, and after it finishes the resumed victim does too.
    let (mut mrs, ropes) = standard_volume(&[
        ClipSpec::av_seconds(4.0),
        ClipSpec::av_seconds(4.0).with_seed(9),
    ])
    .expect("build volume");
    let (va, vb) = (ropes[0], ropes[1]);
    let dur = mrs.rope(va).unwrap().duration();
    let (victim, _) = mrs
        .play("sim", va, MediaSel::Both, Interval::whole(dur))
        .unwrap();
    mrs.pause(victim, true).unwrap();

    let rb = mrs.rope(vb).unwrap().clone();
    let mut sched = compile_schedule(&rb, MediaSel::Both, Interval::whole(rb.duration())).unwrap();
    mrs.resolve_silence(&mut sched).unwrap();
    let report = simulate_playback(&mut mrs, vec![sched], PlaybackConfig::with_k(2))
        .expect("interloper simulate");
    assert!(report.all_continuous());

    mrs.resume(victim).unwrap();
    let ra = mrs.rope(va).unwrap().clone();
    let mut sched = compile_schedule(&ra, MediaSel::Both, Interval::whole(ra.duration())).unwrap();
    mrs.resolve_silence(&mut sched).unwrap();
    let report = simulate_playback(&mut mrs, vec![sched], PlaybackConfig::with_k(2))
        .expect("victim simulate");
    assert!(report.all_continuous());
    mrs.stop(victim, Instant::EPOCH).unwrap();
}
