//! Admission control against the simulator: the formulas' promises hold
//! when measured.

use strandfs::core::admission::{Aggregates, RequestSpec, ServiceEnv};
use strandfs::core::mrs::compile_schedule;
use strandfs::core::msm::MsmConfig;
use strandfs::core::rope::edit::{Interval, MediaSel};
use strandfs::core::FsError;
use strandfs::disk::{DiskGeometry, GapBounds, SeekModel};
use strandfs::sim::playback::{simulate_playback, PlaybackConfig};
use strandfs::sim::{volume_on, ClipSpec};
use strandfs::units::{Bits, Instant};

fn projected_volume(n: usize) -> strandfs::sim::Volume {
    volume_on(
        DiskGeometry::projected_fast(),
        SeekModel::projected_fast(),
        MsmConfig::constrained(
            GapBounds {
                min_sectors: 0,
                max_sectors: 120_000,
            },
            2,
        ),
        &vec![ClipSpec::video_seconds(6.0); n],
    )
    .expect("build volume")
}

fn spec() -> RequestSpec {
    RequestSpec {
        q: 3,
        unit_bits: Bits::new(96_000),
        unit_rate: 30.0,
    }
}

#[test]
fn every_admitted_set_size_plays_continuously() {
    // For each n up to n_max, the Eq. 18 k yields zero violations.
    let (mrs_probe, _) = projected_volume(1);
    let env: ServiceEnv = *mrs_probe.msm().admission_ref().env();
    let n_max = Aggregates::compute(&env, &[spec()]).unwrap().n_max();
    assert!(n_max >= 4, "projected disk should hold several streams");
    for n in [1, n_max / 2, n_max] {
        let n = n.max(1);
        let (mut mrs, ropes) = projected_volume(n);
        let schedules: Vec<_> = ropes
            .iter()
            .map(|r| {
                let rope = mrs.rope(*r).unwrap().clone();
                let mut s =
                    compile_schedule(&rope, MediaSel::Both, Interval::whole(rope.duration()))
                        .unwrap();
                mrs.resolve_silence(&mut s).unwrap();
                s
            })
            .collect();
        let agg = Aggregates::compute(&env, &vec![spec(); n]).unwrap();
        let k = agg.k_transient(n).unwrap();
        let report =
            simulate_playback(&mut mrs, schedules, PlaybackConfig::with_k(k)).expect("simulate");
        assert!(
            report.all_continuous(),
            "n = {n}, k = {k}: {} violations",
            report.total_violations()
        );
    }
}

#[test]
fn beyond_n_max_is_rejected_by_the_server() {
    let (mut mrs, ropes) = projected_volume(12);
    let mut admitted = 0;
    let mut rejection: Option<FsError> = None;
    for r in &ropes {
        let rope = mrs.rope(*r).unwrap().clone();
        match mrs.play("c", *r, MediaSel::Both, Interval::whole(rope.duration())) {
            Ok(_) => admitted += 1,
            Err(e) => {
                rejection = Some(e);
                break;
            }
        }
    }
    let env: ServiceEnv = *mrs.msm().admission_ref().env();
    let n_max = Aggregates::compute(&env, &[spec()]).unwrap().n_max();
    assert_eq!(admitted, n_max, "server must admit exactly n_max");
    assert!(matches!(rejection, Some(FsError::AdmissionRejected { .. })));
}

#[test]
fn destructive_pause_frees_a_slot_for_others() {
    let (mut mrs, ropes) = projected_volume(12);
    // Fill the server.
    let mut reqs = Vec::new();
    for r in &ropes {
        let rope = mrs.rope(*r).unwrap().clone();
        match mrs.play("c", *r, MediaSel::Both, Interval::whole(rope.duration())) {
            Ok((req, _)) => reqs.push(req),
            Err(_) => break,
        }
    }
    let full = reqs.len();
    // One more is rejected...
    let rope = mrs.rope(ropes[full]).unwrap().clone();
    assert!(mrs
        .play(
            "x",
            ropes[full],
            MediaSel::Both,
            Interval::whole(rope.duration())
        )
        .is_err());
    // ...until a client pauses destructively.
    mrs.pause(reqs[0], true).unwrap();
    let (new_req, _) = mrs
        .play(
            "x",
            ropes[full],
            MediaSel::Both,
            Interval::whole(rope.duration()),
        )
        .unwrap();
    // The paused client now cannot resume (its slot is gone).
    assert!(matches!(
        mrs.resume(reqs[0]),
        Err(FsError::AdmissionRejected { .. })
    ));
    // After the newcomer stops, resume succeeds.
    mrs.stop(new_req, Instant::EPOCH).unwrap();
    mrs.resume(reqs[0]).unwrap();
}

#[test]
fn k_grows_with_admissions_and_shrinks_with_releases() {
    let (mut mrs, ropes) = projected_volume(6);
    let mut reqs = Vec::new();
    let mut last_k = 0;
    for r in &ropes {
        let rope = mrs.rope(*r).unwrap().clone();
        let (req, _) = mrs
            .play("c", *r, MediaSel::Both, Interval::whole(rope.duration()))
            .unwrap();
        reqs.push(req);
        let k = mrs.msm().admission_ref().k();
        assert!(k >= last_k, "k must not shrink on admission");
        last_k = k;
    }
    let k_full = mrs.msm().admission_ref().k();
    for req in reqs {
        mrs.stop(req, Instant::EPOCH).unwrap();
    }
    assert_eq!(mrs.msm().admission_ref().k(), 0);
    assert!(k_full >= 1);
}

#[test]
fn mixed_media_tightens_capacity() {
    // Audio blocks play for 100 ms too, but AV ropes consume two
    // admission slots, halving the stream count.
    let (mut mrs, ropes) = volume_on(
        DiskGeometry::projected_fast(),
        SeekModel::projected_fast(),
        MsmConfig::constrained(
            GapBounds {
                min_sectors: 0,
                max_sectors: 120_000,
            },
            2,
        ),
        &vec![ClipSpec::av_seconds(4.0); 12],
    )
    .expect("build volume");
    let mut av_admitted = 0;
    for r in &ropes {
        let rope = mrs.rope(*r).unwrap().clone();
        match mrs.play("c", *r, MediaSel::Both, Interval::whole(rope.duration())) {
            Ok(_) => av_admitted += 1,
            Err(_) => break,
        }
    }
    let env: ServiceEnv = *mrs.msm().admission_ref().env();
    let video_only_n_max = Aggregates::compute(&env, &[spec()]).unwrap().n_max();
    assert!(
        av_admitted < video_only_n_max,
        "AV ropes ({av_admitted}) must admit fewer than video-only ({video_only_n_max})"
    );
    assert!(av_admitted >= 1);
}
