//! Failure injection: corrupt indices, exhausted volumes, degenerate
//! geometries and scattering anomalies.

use strandfs::core::mrs::{Mrs, RecordOpts, TrackOpts};
use strandfs::core::msm::{BlockFetch, FetchFailure, Msm, MsmConfig};
use strandfs::core::strand::StrandMeta;
use strandfs::core::{FsError, StrandId};
use strandfs::disk::{
    AccessKind, DiskGeometry, Extent, FaultInjector, FaultPlan, GapBounds, SeekModel, SimDisk,
};
use strandfs::media::Medium;
use strandfs::units::{Bits, Instant, Nanos};

fn small_msm() -> Msm {
    let disk = SimDisk::new(DiskGeometry::tiny_test(), SeekModel::vintage_1991());
    Msm::new(
        disk,
        MsmConfig::constrained(
            GapBounds {
                min_sectors: 0,
                max_sectors: 128,
            },
            1,
        ),
    )
}

fn tiny_meta() -> StrandMeta {
    StrandMeta {
        medium: Medium::Video,
        unit_rate: 30.0,
        granularity: 1,
        unit_bits: Bits::new(4_096),
    }
}

#[test]
fn corrupted_header_is_detected_on_load() {
    let mut msm = small_msm();
    let id = msm.begin_strand(tiny_meta());
    let mut t = Instant::EPOCH;
    for i in 0..5u64 {
        let (_, op) = msm.append_block(id, t, &vec![i as u8; 512], 1).unwrap();
        t = op.completed;
    }
    let header = msm.finish_strand(id, t).unwrap();
    // Corrupt the header sector on disk.
    let mut bytes = msm.disk().try_fetch(header).unwrap();
    bytes[0] ^= 0xFF;
    // Rewrite the corrupted sector: release + re-store through the disk
    // handle is not exposed, so go through a fresh access pattern: the
    // MSM exposes the disk read path only; we simulate corruption by
    // writing via a scratch strand... instead, corrupt via store_data on
    // a fresh Msm is not possible either. Use the fact that load_strand
    // validates magic: hand it a data extent instead of the header.
    let strand = msm.strand(id).unwrap();
    let data_extent = strand.blocks()[0].unwrap();
    let err = msm.load_strand(id, data_extent, t);
    assert!(matches!(err, Err(FsError::CorruptIndex { .. })));
}

#[test]
fn volume_exhaustion_surfaces_as_alloc_error() {
    let mut msm = small_msm(); // 2048 sectors total
    let id = msm.begin_strand(tiny_meta());
    let mut t = Instant::EPOCH;
    let mut err = None;
    for i in 0..5_000u64 {
        match msm.append_block(id, t, &vec![i as u8; 512], 1) {
            Ok((_, op)) => t = op.completed,
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    assert!(matches!(err, Some(FsError::Alloc(_))));
    // The volume is still coherent: finishing the partial strand works
    // (or fails cleanly if even the index can't be placed).
    match msm.finish_strand(id, t) {
        Ok(_) => {
            let s = msm.strand(id).unwrap();
            assert!(s.block_count() > 0);
        }
        Err(FsError::Alloc(_)) => {} // acceptable: no room for the index
        Err(e) => panic!("unexpected {e}"),
    }
}

#[test]
fn record_session_survives_disk_full_mid_recording() {
    let disk = SimDisk::new(DiskGeometry::tiny_test(), SeekModel::vintage_1991());
    let mut mrs = Mrs::new(Msm::new(
        disk,
        MsmConfig::constrained(
            GapBounds {
                min_sectors: 0,
                max_sectors: 64,
            },
            2,
        ),
    ));
    let req = mrs
        .record(
            "alice",
            RecordOpts {
                video: Some(TrackOpts {
                    meta: tiny_meta(),
                    silence: None,
                }),
                audio: None,
            },
        )
        .unwrap();
    let mut t = Instant::EPOCH;
    let mut failed = false;
    for i in 0..5_000u64 {
        match mrs.record_video_frame(req, t, &vec![i as u8; 512]) {
            Ok(Some(op)) => t = op.completed,
            Ok(None) => {}
            Err(FsError::Alloc(_)) => {
                failed = true;
                break;
            }
            Err(e) => panic!("unexpected {e}"),
        }
    }
    assert!(failed, "tiny disk must fill up");
    // STOP still releases the admission slot even if finalization
    // cannot place an index.
    let _ = mrs.stop(req, t);
    assert_eq!(mrs.msm().admission_ref().active(), 0);
}

#[test]
fn wrap_anomalies_are_counted() {
    // A strand striding min 64 sectors per block runs off the 2048-sector
    // disk after ~31 blocks; the allocator wraps and records each
    // anomaly.
    let disk = SimDisk::new(DiskGeometry::tiny_test(), SeekModel::vintage_1991());
    let mut msm = Msm::new(
        disk,
        MsmConfig::constrained(
            GapBounds {
                min_sectors: 64,
                max_sectors: 128,
            },
            1,
        ),
    );
    let id = msm.begin_strand(tiny_meta());
    let mut t = Instant::EPOCH;
    for i in 0..60u64 {
        match msm.append_block(id, t, &vec![i as u8; 512], 1) {
            Ok((_, op)) => t = op.completed,
            Err(_) => break, // wrapped space exhausted — fine
        }
    }
    assert!(
        msm.allocator().stats().wraps > 0,
        "expected wrap anomalies on the tiny disk"
    );
}

#[test]
fn degenerate_single_cylinder_disk_works() {
    let geometry = DiskGeometry {
        cylinders: 1,
        tracks_per_cylinder: 4,
        sectors_per_track: 32,
        sector_size: strandfs::units::Bytes::new(512),
        rpm: 3_600.0,
        head_switch: strandfs::units::Seconds::from_millis(0.5),
    };
    let mut disk = SimDisk::new(geometry, SeekModel::vintage_1991());
    // No seek is ever charged on one cylinder.
    let op1 = disk.access(
        Instant::EPOCH,
        strandfs::disk::Extent::new(0, 4),
        AccessKind::Read,
    );
    let op2 = disk.access(
        op1.completed,
        strandfs::disk::Extent::new(100, 4),
        AccessKind::Read,
    );
    assert_eq!(op1.seek.as_nanos(), 0);
    assert_eq!(op2.seek.as_nanos(), 0);
    assert_eq!(disk.max_positioning_time(), {
        // max positioning = zero-stroke seek + one rotation
        geometry.rotation_time()
    });
}

#[test]
fn gap_bounds_survive_degenerate_geometries() {
    use strandfs::disk::GapBounds;
    use strandfs::units::Seconds;
    let single = DiskGeometry {
        cylinders: 1,
        tracks_per_cylinder: 4,
        sectors_per_track: 32,
        sector_size: strandfs::units::Bytes::new(512),
        rpm: 3_600.0,
        head_switch: strandfs::units::Seconds::from_millis(0.5),
    };
    let disk = SimDisk::new(single, SeekModel::vintage_1991());
    // On one cylinder no seek is possible, so the scattering budget buys
    // zero cylinders of separation — not a panic, and not a phantom
    // 1-cylinder gap (the old binary search collapsed to lo = hi = 1).
    let b = GapBounds::from_times(&disk, Seconds::ZERO, Seconds::from_millis(100.0))
        .expect("generous budget is feasible");
    assert_eq!(b.max_sectors, 0);
    assert_eq!(b.min_sectors, 0);
    // A budget below half a rotation is infeasible on any geometry.
    assert_eq!(
        GapBounds::from_times(&disk, Seconds::ZERO, Seconds::from_millis(1.0)),
        None
    );
    // Recording still works end to end: every block lands gap-0.
    let mut msm = Msm::new(
        SimDisk::new(single, SeekModel::vintage_1991()),
        MsmConfig::constrained(b, 1),
    );
    let id = msm.begin_strand(tiny_meta());
    let mut t = Instant::EPOCH;
    for i in 0..4u64 {
        let (_, op) = msm.append_block(id, t, &vec![i as u8; 512], 1).unwrap();
        t = op.completed;
    }
    msm.finish_strand(id, t).unwrap();
    let strand = msm.strand(id).unwrap();
    let blocks: Vec<_> = strand.stored_iter().map(|(_, e)| e).collect();
    for w in blocks.windows(2) {
        assert_eq!(w[1].start, w[0].end(), "gap must be exactly zero");
    }
}

#[test]
fn empty_strand_finishes_and_deletes_cleanly() {
    let mut msm = small_msm();
    let id = msm.begin_strand(tiny_meta());
    msm.finish_strand(id, Instant::EPOCH).unwrap();
    let s = msm.strand(id).unwrap();
    assert_eq!(s.block_count(), 0);
    assert_eq!(s.unit_count(), 0);
    msm.delete_strand(id).unwrap();
}

/// A five-block strand on a fault-injecting tiny disk, recorded clean
/// (faults are armed afterwards, so recording is never disturbed).
fn faulted_msm() -> (Msm, StrandId, Instant) {
    let disk = SimDisk::new(DiskGeometry::tiny_test(), SeekModel::vintage_1991());
    let injector = FaultInjector::new(disk, FaultPlan::clean(), 42);
    let mut msm = Msm::new(
        injector,
        MsmConfig::constrained(
            GapBounds {
                min_sectors: 0,
                max_sectors: 128,
            },
            1,
        ),
    );
    let id = msm.begin_strand(tiny_meta());
    let mut t = Instant::EPOCH;
    for i in 0..5u64 {
        let (_, op) = msm.append_block(id, t, &vec![i as u8; 512], 1).unwrap();
        t = op.completed;
    }
    msm.finish_strand(id, t).unwrap();
    (msm, id, t)
}

fn block_extent(msm: &Msm, id: StrandId, n: u64) -> Extent {
    msm.strand(id).unwrap().block(n).unwrap().unwrap()
}

#[test]
fn bad_media_read_surfaces_as_media_error() {
    let (mut msm, id, t) = faulted_msm();
    let victim = block_extent(&msm, id, 2);
    assert!(msm.arm_faults(FaultPlan::clean().with_bad_extent(victim)));
    let err = msm.read_block(id, 2, t);
    assert!(
        matches!(err, Err(FsError::MediaError { lba, .. }) if lba == victim.start),
        "got {err:?}"
    );
    // Blocks off the bad extent still read fine.
    let (payload, _) = msm.read_block(id, 0, t).unwrap();
    assert_eq!(payload.unwrap()[0], 0);
}

#[test]
fn transient_fault_with_zero_budget_exhausts_retries() {
    let (mut msm, id, t) = faulted_msm();
    let victim = block_extent(&msm, id, 1);
    assert!(msm.arm_faults(FaultPlan::clean().with_transient(victim, 3)));
    // `read_block` runs with a zero retry budget: the first transient
    // fault exhausts it.
    let err = msm.read_block(id, 1, t);
    assert!(
        matches!(err, Err(FsError::RetriesExhausted { lba, .. }) if lba == victim.start),
        "got {err:?}"
    );
}

#[test]
fn resilient_read_recovers_within_budget() {
    let (mut msm, id, t) = faulted_msm();
    let victim = block_extent(&msm, id, 1);
    assert!(msm.arm_faults(FaultPlan::clean().with_transient(victim, 1)));
    let fetch = msm
        .read_block_resilient(id, 1, t, Nanos::from_millis(500), None)
        .unwrap();
    match fetch {
        BlockFetch::Data {
            payload, retries, ..
        } => {
            assert_eq!(retries, 1, "one transient failure, then success");
            assert_eq!(payload[0], 1);
        }
        other => panic!("expected recovered data, got {other:?}"),
    }
}

#[test]
fn expired_deadline_abandons_without_io() {
    let (mut msm, id, t) = faulted_msm();
    let reads_before = msm.disk().stats().reads;
    let fetch = msm
        .read_block_resilient(id, 0, t, Nanos::from_millis(500), Some(Instant::EPOCH))
        .unwrap();
    assert!(
        matches!(
            fetch,
            BlockFetch::Failed {
                reason: FetchFailure::Abandoned,
                retries: 0,
                ..
            }
        ),
        "got {fetch:?}"
    );
    assert_eq!(
        msm.disk().stats().reads,
        reads_before,
        "an abandoned fetch must not touch the disk"
    );
}

#[test]
fn off_device_extents_fail_cleanly() {
    let (mut msm, id, t) = faulted_msm();
    // The checked fetch refuses extents past the end of the device.
    assert!(msm.disk().try_fetch(Extent::new(1_000_000, 4)).is_none());
    // A corrupt header pointer surfaces as CorruptIndex, not a panic.
    let err = msm.load_strand(id, Extent::new(1_000_000, 1), t);
    assert!(
        matches!(err, Err(FsError::CorruptIndex { .. })),
        "got {err:?}"
    );
}

#[test]
fn out_of_range_block_is_an_error() {
    let (mut msm, id, t) = faulted_msm();
    assert!(matches!(
        msm.read_block(id, 999, t),
        Err(FsError::BlockOutOfRange { block: 999, .. })
    ));
}

#[test]
fn reading_from_deleted_strand_fails_cleanly() {
    let mut msm = small_msm();
    let id = msm.begin_strand(tiny_meta());
    let (_, op) = msm
        .append_block(id, Instant::EPOCH, &[1u8; 512], 1)
        .unwrap();
    msm.finish_strand(id, op.completed).unwrap();
    msm.delete_strand(id).unwrap();
    assert!(matches!(
        msm.read_block(id, 0, Instant::EPOCH),
        Err(FsError::UnknownStrand(_))
    ));
}
