//! End-to-end pipeline: RECORD through the MRS, byte-exact read-back,
//! on-disk index reload, and continuous playback.

use strandfs::core::mrs::{Mrs, RecordOpts, TrackOpts};
use strandfs::core::msm::{Msm, MsmConfig};
use strandfs::core::rope::edit::{Interval, MediaSel};
use strandfs::core::strand::StrandMeta;
use strandfs::disk::{DiskGeometry, GapBounds, SeekModel, SimDisk};
use strandfs::media::{Medium, VideoCodec};
use strandfs::sim::playback::{simulate_playback, PlaybackConfig};
use strandfs::units::{Bits, Instant};

fn fresh_mrs(seed: u64) -> Mrs {
    let disk = SimDisk::new(DiskGeometry::vintage_1991(), SeekModel::vintage_1991());
    Mrs::new(Msm::new(
        disk,
        MsmConfig::constrained(
            GapBounds {
                min_sectors: 0,
                max_sectors: 40_000,
            },
            seed,
        ),
    ))
}

fn video_opts() -> RecordOpts {
    RecordOpts {
        video: Some(TrackOpts {
            meta: StrandMeta {
                medium: Medium::Video,
                unit_rate: 30.0,
                granularity: 3,
                unit_bits: Bits::new(96_000),
            },
            silence: None,
        }),
        audio: None,
    }
}

#[test]
fn recorded_frames_read_back_byte_exact() {
    let mut mrs = fresh_mrs(1);
    let codec = VideoCodec::uvc_ntsc(99);
    let req = mrs.record("alice", video_opts()).unwrap();
    let mut t = Instant::EPOCH;
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for i in 0..30 {
        let bytes = codec.frame_bits(i).to_bytes_ceil().get() as usize;
        let payload = codec.frame_payload(i, bytes);
        frames.push(payload.clone());
        if let Some(op) = mrs.record_video_frame(req, t, &payload).unwrap() {
            t = op.completed;
        }
    }
    let rope_id = mrs.stop(req, t).unwrap().unwrap();
    let rope = mrs.rope(rope_id).unwrap().clone();
    let vref = rope.segments[0].video.unwrap();

    // Each block holds 3 concatenated frames; compare byte-exact.
    for block in 0..10u64 {
        let (payload, op) = mrs
            .msm_mut()
            .read_block(vref.strand, block, Instant::EPOCH)
            .unwrap();
        let payload = payload.unwrap();
        assert!(op.is_some());
        let expected: Vec<u8> = (0..3)
            .flat_map(|j| frames[(block * 3 + j) as usize].clone())
            .collect();
        assert_eq!(
            &payload[..expected.len()],
            &expected[..],
            "block {block} payload mismatch"
        );
    }
}

#[test]
fn on_disk_index_reload_matches_memory() {
    let mut mrs = fresh_mrs(2);
    let req = mrs.record("alice", video_opts()).unwrap();
    let mut t = Instant::EPOCH;
    for i in 0..90u64 {
        let payload = vec![(i % 256) as u8; 12_000];
        if let Some(op) = mrs.record_video_frame(req, t, &payload).unwrap() {
            t = op.completed;
        }
    }
    let rope_id = mrs.stop(req, t).unwrap().unwrap();
    let vref = mrs.rope(rope_id).unwrap().segments[0].video.unwrap();
    let strand_id = vref.strand;

    let original = mrs.msm().strand(strand_id).unwrap().clone();
    // The header is the last index extent written.
    let header = *original.index_extents().last().unwrap();
    let reloaded = mrs.msm_mut().load_strand(strand_id, header, t).unwrap();
    assert_eq!(reloaded.blocks(), original.blocks());
    assert_eq!(reloaded.unit_count(), original.unit_count());
    assert_eq!(reloaded.meta(), original.meta());
    assert_eq!(reloaded.block_count(), 30);
}

#[test]
fn playback_of_recording_is_continuous_and_ordered() {
    let mut mrs = fresh_mrs(3);
    let req = mrs.record("alice", video_opts()).unwrap();
    let mut t = Instant::EPOCH;
    for i in 0..60u64 {
        let payload = vec![(i % 256) as u8; 12_000];
        if let Some(op) = mrs.record_video_frame(req, t, &payload).unwrap() {
            t = op.completed;
        }
    }
    let rope_id = mrs.stop(req, t).unwrap().unwrap();
    let dur = mrs.rope(rope_id).unwrap().duration();
    let (play_req, mut schedule) = mrs
        .play("bob", rope_id, MediaSel::Video, Interval::whole(dur))
        .unwrap();
    mrs.resolve_silence(&mut schedule).unwrap();
    assert_eq!(schedule.items.len(), 20);
    // Deadlines step by exactly one block duration (100 ms).
    for (j, item) in schedule.items.iter().enumerate() {
        assert_eq!(
            item.at.as_nanos(),
            j as u64 * 100_000_000,
            "item {j} deadline"
        );
        assert_eq!(item.units, 3);
    }
    let report =
        simulate_playback(&mut mrs, vec![schedule], PlaybackConfig::with_k(2)).expect("simulate");
    assert!(report.all_continuous());
    mrs.stop(play_req, Instant::EPOCH).unwrap();
}

#[test]
fn partial_interval_playback() {
    let mut mrs = fresh_mrs(4);
    let req = mrs.record("alice", video_opts()).unwrap();
    let mut t = Instant::EPOCH;
    for i in 0..60u64 {
        let payload = vec![(i % 256) as u8; 12_000];
        if let Some(op) = mrs.record_video_frame(req, t, &payload).unwrap() {
            t = op.completed;
        }
    }
    let rope_id = mrs.stop(req, t).unwrap().unwrap();
    // Play only [0.5 s, 1.5 s).
    let (_, schedule) = mrs
        .play(
            "bob",
            rope_id,
            MediaSel::Video,
            Interval::new(
                strandfs::units::Nanos::from_millis(500),
                strandfs::units::Nanos::from_secs(1),
            ),
        )
        .unwrap();
    let total_units: u64 = schedule.items.iter().map(|i| i.units).sum();
    assert_eq!(total_units, 30, "1 s at 30 fps");
    // The first item starts mid-block (frame 15 lives in block 5).
    assert_eq!(schedule.items[0].block, 5);
}

#[test]
fn text_files_coexist_with_media() {
    let mut mrs = fresh_mrs(5);
    let req = mrs.record("alice", video_opts()).unwrap();
    let mut t = Instant::EPOCH;
    for i in 0..30u64 {
        let payload = vec![(i % 256) as u8; 12_000];
        if let Some(op) = mrs.record_video_frame(req, t, &payload).unwrap() {
            t = op.completed;
        }
    }
    let rope_id = mrs.stop(req, t).unwrap().unwrap();
    // Store a text file in the gaps, then verify media still plays.
    let text = b"The quick brown fox jumps over the lazy dog".repeat(100);
    let extents = mrs.msm_mut().store_text_file(&text, t).unwrap();
    assert!(!extents.is_empty());
    let dur = mrs.rope(rope_id).unwrap().duration();
    let (_, mut schedule) = mrs
        .play("bob", rope_id, MediaSel::Video, Interval::whole(dur))
        .unwrap();
    mrs.resolve_silence(&mut schedule).unwrap();
    let report =
        simulate_playback(&mut mrs, vec![schedule], PlaybackConfig::with_k(2)).expect("simulate");
    assert!(report.all_continuous());
}
