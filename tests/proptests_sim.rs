//! Property tests over the simulation substrate: disk timing physics,
//! codec behaviour and schedule transformations.
//!
//! Runs on the in-tree `strandfs-testkit` harness (seeded deterministic
//! PRNG; see `tests/proptests.rs` for the replay knobs).

use strandfs::core::mrs::{apply_play_mode, PlayItem, PlaySchedule};
use strandfs::core::StrandId;
use strandfs::disk::{AccessKind, DiskGeometry, Extent, SeekModel, SimDisk};
use strandfs::media::silence::SilenceDetector;
use strandfs::media::{Medium, VideoCodec};
use strandfs::units::{Instant, Nanos};
use strandfs_testkit::fsx::{try_run as fsx_try_run, FsxConfig};
use strandfs_testkit::{
    any_bool, check, check_with, prop_assert, prop_assert_eq, vec as prop_vec, CaseError, Config,
};

fn tiny_disk() -> SimDisk {
    SimDisk::new(DiskGeometry::tiny_test(), SeekModel::vintage_1991())
}

#[test]
fn disk_access_is_deterministic() {
    check(
        "disk_access_is_deterministic",
        (0u64..10_000_000, 0u64..2_040, 1u64..8),
        |&(now_us, lba, sectors)| {
            let e = Extent::new(lba, sectors);
            let t = Instant::EPOCH + Nanos::from_micros(now_us);
            let op1 = tiny_disk().access(t, e, AccessKind::Read);
            let op2 = tiny_disk().access(t, e, AccessKind::Read);
            prop_assert_eq!(op1.completed, op2.completed);
            prop_assert_eq!(op1.seek, op2.seek);
            prop_assert_eq!(op1.rotation, op2.rotation);
            prop_assert_eq!(op1.transfer, op2.transfer);
            Ok(())
        },
    );
}

#[test]
fn disk_timing_physics_hold() {
    check(
        "disk_timing_physics_hold",
        (0u64..10_000_000, 0u64..2_040, 1u64..8, 0u64..2_047),
        |&(now_us, lba, sectors, warm_lba)| {
            let mut disk = tiny_disk();
            // Warm the arm to an arbitrary position first.
            let w = disk.access(Instant::EPOCH, Extent::new(warm_lba, 1), AccessKind::Read);
            let t = w.completed + Nanos::from_micros(now_us);
            let op = disk.access(t, Extent::new(lba, sectors), AccessKind::Read);
            // Completion after issue; decomposition sums.
            prop_assert!(op.completed > t || op.service_time() == Nanos::ZERO);
            prop_assert_eq!(op.completed, t + op.seek + op.rotation + op.transfer);
            // Rotation bounded by one revolution.
            let rev = disk.geometry().rotation_time().to_nanos();
            prop_assert!(op.rotation < rev);
            // Transfer at least the raw sector time.
            let floor = disk.geometry().sector_time().to_nanos().mul_u64(sectors);
            prop_assert!(op.transfer + Nanos::from_nanos(16) >= floor);
            // Arm ends on the extent's final cylinder.
            prop_assert_eq!(
                disk.head_cylinder(),
                disk.geometry().cylinder_of(lba + sectors - 1)
            );
            Ok(())
        },
    );
}

#[test]
fn positioning_time_is_monotone_in_distance() {
    check(
        "positioning_time_is_monotone_in_distance",
        (0u64..64, 0u64..64),
        |&(d1, d2)| {
            let disk = tiny_disk();
            let (lo, hi) = (d1.min(d2), d1.max(d2));
            prop_assert!(disk.positioning_time(lo) <= disk.positioning_time(hi));
            prop_assert!(
                disk.positioning_time(hi).to_nanos() <= disk.max_positioning_time().to_nanos()
            );
            Ok(())
        },
    );
}

#[test]
fn payload_round_trips_any_extent() {
    check(
        "payload_round_trips_any_extent",
        (0u64..2_000, 1u64..8, 0u32..256),
        |&(lba, sectors, seed)| {
            let seed = seed as u8;
            let mut disk = tiny_disk();
            let e = Extent::new(lba, sectors);
            let data: Vec<u8> = (0..sectors * 512)
                .map(|i| (i as u8).wrapping_add(seed))
                .collect();
            disk.store_data(e, &data);
            prop_assert_eq!(disk.fetch_data(e), data);
            disk.discard_data(e);
            prop_assert!(disk.fetch_data(e).iter().all(|&b| b == 0));
            Ok(())
        },
    );
}

#[test]
fn codec_sizes_bounded_by_raw() {
    check(
        "codec_sizes_bounded_by_raw",
        (0u64..u64::MAX, 0u64..500),
        |&(seed, frame)| {
            for codec in [VideoCodec::uvc_ntsc(seed), VideoCodec::uvc_ntsc_vbr(seed)] {
                let bits = codec.frame_bits(frame);
                prop_assert!(bits.get() >= 8);
                prop_assert!(bits <= codec.format().raw_frame_bits());
            }
            Ok(())
        },
    );
}

#[test]
fn silence_detection_monotone_in_threshold() {
    check(
        "silence_detection_monotone_in_threshold",
        (
            prop_vec(-127i32..=127, 1..200),
            0.0f64..20_000.0,
            0.0f64..20_000.0,
        ),
        |(samples, t1, t2)| {
            let (lo, hi) = (t1.min(*t2), t1.max(*t2));
            let f_lo = SilenceDetector::new(lo).silence_fraction(samples, 16);
            let f_hi = SilenceDetector::new(hi).silence_fraction(samples, 16);
            prop_assert!(f_hi >= f_lo, "higher threshold must classify more silence");
            Ok(())
        },
    );
}

fn synthetic_schedule(blocks: u64) -> PlaySchedule {
    let items = (0..blocks)
        .map(|b| PlayItem {
            at: Nanos::from_millis(b * 100),
            medium: Medium::Video,
            strand: StrandId::from_raw(1),
            block: b,
            units: 3,
            duration: Nanos::from_millis(100),
            silence: false,
        })
        .collect();
    PlaySchedule {
        items,
        duration: Nanos::from_millis(blocks * 100),
        triggers: Vec::new(),
    }
}

#[test]
fn play_mode_identity_at_unit_speed() {
    check("play_mode_identity_at_unit_speed", 1u64..100, |&blocks| {
        let s = synthetic_schedule(blocks);
        let out = apply_play_mode(&s, 1.0, false);
        prop_assert_eq!(out.items.len(), s.items.len());
        prop_assert_eq!(out.duration, s.duration);
        for (a, b) in s.items.iter().zip(&out.items) {
            prop_assert_eq!(a.at, b.at);
        }
        Ok(())
    });
}

#[test]
fn play_mode_duration_scales() {
    check(
        "play_mode_duration_scales",
        (1u64..100, 1.0f64..8.0),
        |&(blocks, speed)| {
            let s = synthetic_schedule(blocks);
            let out = apply_play_mode(&s, speed, false);
            let want = s.duration.as_secs_f64() / speed;
            prop_assert!((out.duration.as_secs_f64() - want).abs() < 1e-6);
            prop_assert_eq!(out.items.len(), s.items.len());
            // Deadlines stay sorted.
            for w in out.items.windows(2) {
                prop_assert!(w[0].at <= w[1].at);
            }
            Ok(())
        },
    );
}

#[test]
fn random_fault_plans_keep_trace_invariants_and_shield_non_victims() {
    use std::collections::HashMap;
    use strandfs::core::mrs::compile_schedule;
    use strandfs::core::rope::edit::{Interval, MediaSel};
    use strandfs::disk::FaultPlan;
    use strandfs::obs::{Event, ObsSink};
    use strandfs::sim::playback::{simulate_playback, DegradeMode, PlaybackConfig};
    use strandfs::sim::{faulty_volume, ClipSpec};

    // Each case records a fresh two-stream volume and plays it through a
    // randomly parameterised fault plan, so the case count stays small;
    // `STRANDFS_TEST_CASES` rescales it for chaos runs.
    check_with(
        &Config::with_cases(6),
        "random_fault_plans_keep_trace_invariants",
        (0u64..1_000, 2u64..14, 1u64..5, 1u64..4, 1u64..3),
        |&(seed, start, len, revoke_after, readmit_clean)| {
            let clips = [ClipSpec::video_seconds(2.0); 2];
            let (mut mrs, ropes) = faulty_volume(&clips, seed).expect("build volume");
            let scheds: Vec<_> = ropes
                .iter()
                .map(|r| {
                    let rope = mrs.rope(*r).unwrap().clone();
                    let mut s =
                        compile_schedule(&rope, MediaSel::Both, Interval::whole(rope.duration()))
                            .unwrap();
                    mrs.resolve_silence(&mut s).unwrap();
                    s
                })
                .collect();
            // Permanently corrupt a random run of stream 1's blocks; the
            // plan arms only after the clean recording, like real decay.
            let mut plan = FaultPlan::clean();
            for item in scheds[1]
                .items
                .iter()
                .skip(start as usize)
                .take(len as usize)
            {
                let e = mrs
                    .msm()
                    .strand(item.strand)
                    .unwrap()
                    .block(item.block)
                    .unwrap()
                    .unwrap();
                plan = plan.with_bad_extent(e);
            }
            prop_assert!(mrs.msm_mut().arm_faults(plan));
            let (sink, rec) = ObsSink::ring(1 << 16);
            mrs.set_obs(sink);
            let report = simulate_playback(
                &mut mrs,
                scheds,
                PlaybackConfig::with_k(6).degraded(DegradeMode::Ladder {
                    revoke_after_drops: revoke_after,
                    readmit_clean_rounds: readmit_clean,
                }),
            )
            .expect("simulate");

            // Round slices from the event stream: starts monotone, every
            // slice well-formed.
            let r = rec.borrow();
            let mut slices: HashMap<u64, (Option<Instant>, Option<Instant>)> = HashMap::new();
            let mut last_start = None;
            for e in r.events() {
                match *e {
                    Event::RoundStart { round, at, .. } => {
                        if let Some(prev) = last_start {
                            prop_assert!(at >= prev, "round starts must be monotone");
                        }
                        last_start = Some(at);
                        slices.entry(round).or_insert((None, None)).0 = Some(at);
                    }
                    Event::RoundEnd { round, at } => {
                        slices.entry(round).or_insert((None, None)).1 = Some(at);
                    }
                    _ => {}
                }
            }
            for (round, (s, e)) in &slices {
                let (s, e) = (s.expect("round started"), e.expect("round ended"));
                prop_assert!(s <= e, "round {} slice inverted", round);
            }
            // Every degrade decision and deadline completion lands inside
            // the round slice it claims.
            let inside = |round: u64, at: Instant| {
                let (s, e) = slices[&round];
                s.unwrap() <= at && at <= e.unwrap()
            };
            for e in r.events() {
                match *e {
                    Event::Degrade { round, at, .. } => {
                        prop_assert!(inside(round, at), "degrade outside its round slice");
                    }
                    Event::Deadline {
                        round, completed, ..
                    } => {
                        prop_assert!(inside(round, completed), "deadline outside its round");
                    }
                    _ => {}
                }
            }

            // The non-victim stream is fully shielded by the ladder.
            prop_assert_eq!(report.streams[0].violations, 0);
            prop_assert_eq!(report.streams[0].dropped_blocks, 0);
            // Every victim item was delivered or degraded into a hole —
            // none simply vanished.
            let v = &report.streams[1];
            prop_assert_eq!(v.fetched + v.dropped_blocks, v.blocks);
            Ok(())
        },
    );
}

#[test]
fn random_crash_points_recover_to_a_verified_prefix() {
    use strandfs::core::journal::JournalConfig;
    use strandfs::core::msm::{Msm, MsmConfig};
    use strandfs::core::strand::StrandMeta;
    use strandfs::core::{fsck, StrandId as Sid};
    use strandfs::disk::{CrashPoint, FaultInjector, FaultPlan, GapBounds};
    use strandfs::units::Bits;

    fn config() -> MsmConfig {
        MsmConfig::constrained(
            GapBounds {
                min_sectors: 0,
                max_sectors: 128,
            },
            1,
        )
        .with_journal(JournalConfig {
            slots: 64,
            ..JournalConfig::default()
        })
    }
    fn meta() -> StrandMeta {
        StrandMeta {
            medium: Medium::Video,
            unit_rate: 30.0,
            granularity: 3,             // blocks carry one to three units
            unit_bits: Bits::new(4096), // 512 B units: one sector each
        }
    }
    // Distinct nonzero fills, so a torn suffix can never pass for the
    // intended content.
    fn fill(strand: u64, block: u64) -> u8 {
        (7 + strand * 31 + block * 3) as u8
    }
    fn payload(strand: u64, block: u64, units: u64) -> Vec<u8> {
        vec![fill(strand, block); units as usize * 512]
    }
    // Record `counts[i]` blocks into strand `i` (block `b` carries
    // `1 + (b % 3)` units), optionally deleting strand 0 at the end;
    // crash at device-write `crash_at`, power-cycle and recover.
    fn crashed_recovery(
        seed: u64,
        crash_at: u64,
        counts: &[u64],
        delete_first: bool,
    ) -> Result<Msm, strandfs::core::FsError> {
        let disk = SimDisk::new(DiskGeometry::tiny_test(), SeekModel::vintage_1991());
        let plan = FaultPlan::clean().with_crash_point(CrashPoint::AfterWrites(crash_at));
        let mut msm = Msm::new(FaultInjector::new(disk, plan, seed), config());
        let mut t = Instant::EPOCH;
        let workload = |msm: &mut Msm, t: &mut Instant| -> Result<(), strandfs::core::FsError> {
            for (i, &blocks) in counts.iter().enumerate() {
                let id = msm.begin_strand(meta());
                for b in 0..blocks {
                    let units = 1 + (b % 3);
                    let (_, op) = msm.append_block(id, *t, &payload(i as u64, b, units), units)?;
                    *t = op.completed;
                }
                msm.finish_strand(id, *t)?;
            }
            if delete_first {
                msm.delete_strand(Sid::from_raw(0))?;
            }
            Ok(())
        };
        // A crash mid-recording surfaces as a write fault — exactly
        // what it does to a real recorder.
        let _ = workload(&mut msm, &mut t);
        let mut device = msm.into_device();
        device.power_cycle();
        Msm::recover(device, config(), Instant::EPOCH).map(|(m, _)| m)
    }

    check_with(
        &Config::with_cases(12),
        "random_crash_points_recover_to_a_verified_prefix",
        (0u64..1_000, 0u64..90, 1u64..7, 0u64..7, any_bool()),
        |&(seed, crash_at, n0, n1, delete_first)| {
            let counts = [n0, n1];
            let mut rec = crashed_recovery(seed, crash_at, &counts, delete_first)
                .expect("recovery must mount any crashed image");
            // Every recovered strand is a verified prefix of the intent.
            for (i, &blocks) in counts.iter().enumerate() {
                let Ok(strand) = rec.strand(Sid::from_raw(i as u64)) else {
                    continue; // absent: the empty prefix (or deleted)
                };
                let n = strand.block_count();
                prop_assert!(n <= blocks, "strand {} grew past its intent", i);
                for b in 0..n {
                    let e = strand.block(b).unwrap().expect("no silence in intent");
                    let got = rec.disk().try_fetch(e).expect("recovered block on device");
                    prop_assert_eq!(got, payload(i as u64, b, 1 + (b % 3)));
                    prop_assert!(
                        rec.allocator().freemap().extent_used(e),
                        "recovered block missing from the free map"
                    );
                }
            }
            // The volume is internally consistent without repairs.
            let report = fsck::check_msm(&mut rec, Instant::EPOCH);
            prop_assert!(report.clean(), "fsck after recovery: {:?}", report.findings);
            // Same seed, same crash: byte-identical recovered image.
            let rec2 = crashed_recovery(seed, crash_at, &counts, delete_first)
                .expect("replayed recovery must mount");
            prop_assert_eq!(rec.disk().content_hash(), rec2.disk().content_hash());
            Ok(())
        },
    );
}

#[test]
fn play_mode_skip_keeps_every_nth() {
    check(
        "play_mode_skip_keeps_every_nth",
        (1u64..200, 2u32..6),
        |&(blocks, speed)| {
            let s = synthetic_schedule(blocks);
            let out = apply_play_mode(&s, speed as f64, true);
            let stride = speed as u64;
            prop_assert_eq!(out.items.len() as u64, blocks.div_ceil(stride));
            for (j, item) in out.items.iter().enumerate() {
                prop_assert_eq!(item.block, j as u64 * stride);
                // Fetch cadence unchanged: one block duration apart.
                prop_assert_eq!(item.at, Nanos::from_millis(j as u64 * 100));
            }
            Ok(())
        },
    );
}

#[test]
fn optimized_service_loop_matches_the_reference_loop() {
    use strandfs::core::mrs::compile_schedule;
    use strandfs::core::rope::edit::{Interval, MediaSel};
    use strandfs::disk::FaultPlan;
    use strandfs::sim::playback::{simulate_degraded, Arrival, DegradeMode, ServiceOrder};
    use strandfs::sim::reference::simulate_degraded_reference;
    use strandfs::sim::{faulty_volume, ClipSpec};

    // The scale-reworked loop (persistent round buffers, memoized SCAN
    // keys, payload-free reads, O(1) slack) must be observationally
    // identical to the naive reference transliteration: same per-stream
    // outcomes, same round count, same disk busy time — across random
    // populations, service orders, degradation modes, fault plans and
    // mid-flight arrivals. Both runs build the same volume from the
    // same seed, so any divergence is the loops', not the scenario's.
    check_with(
        &Config::with_cases(8),
        "optimized_service_loop_matches_the_reference_loop",
        (0u64..1_000, 1usize..4, 0u8..3, 0u8..3, any_bool(), 2u64..6),
        |&(seed, n, order_sel, degrade_sel, with_arrival, k)| {
            let order = match order_sel {
                0 => ServiceOrder::RoundRobin,
                1 => ServiceOrder::Scan,
                _ => ServiceOrder::Cscan,
            };
            let degrade = match degrade_sel {
                0 => DegradeMode::Strict,
                1 => DegradeMode::Abandon,
                _ => DegradeMode::Ladder {
                    revoke_after_drops: 2,
                    readmit_clean_rounds: 2,
                },
            };
            let build = || {
                let clips = vec![ClipSpec::video_seconds(2.0); n];
                let (mut mrs, ropes) = faulty_volume(&clips, seed).expect("build volume");
                let scheds: Vec<_> = ropes
                    .iter()
                    .map(|r| {
                        let rope = mrs.rope(*r).unwrap().clone();
                        let mut s = compile_schedule(
                            &rope,
                            MediaSel::Both,
                            Interval::whole(rope.duration()),
                        )
                        .unwrap();
                        mrs.resolve_silence(&mut s).unwrap();
                        s
                    })
                    .collect();
                // Strict service must stay fault-free (faults abort the
                // run); the degraded modes face transient decay plus, on
                // the ladder, one permanently bad block to force the
                // revoke/readmit path.
                if !matches!(degrade, DegradeMode::Strict) {
                    let mut plan = FaultPlan::clean().with_random_transients(0.08, 1);
                    if matches!(degrade, DegradeMode::Ladder { .. }) {
                        let item = scheds[0].items[8];
                        if !item.silence {
                            let e = mrs
                                .msm()
                                .strand(item.strand)
                                .unwrap()
                                .block(item.block)
                                .unwrap()
                                .unwrap();
                            plan = plan.with_bad_extent(e);
                        }
                    }
                    assert!(mrs.msm_mut().arm_faults(plan));
                }
                let arrivals = if with_arrival {
                    vec![Arrival {
                        at_round: 3,
                        schedule: scheds[0].clone(),
                    }]
                } else {
                    Vec::new()
                };
                (mrs, scheds, arrivals)
            };
            let k_of_round = move |round: u64, live: usize| k + (round + live as u64) % 2;

            let (mut mrs, scheds, arrivals) = build();
            let optimized = simulate_degraded(
                &mut mrs,
                scheds,
                arrivals,
                |k| k,
                k_of_round,
                order,
                degrade,
            )
            .expect("optimized run");
            let (mut mrs, scheds, arrivals) = build();
            let reference = simulate_degraded_reference(
                &mut mrs,
                scheds,
                arrivals,
                |k| k,
                k_of_round,
                order,
                degrade,
            )
            .expect("reference run");
            prop_assert_eq!(&optimized, &reference);
            Ok(())
        },
    );
}

#[test]
fn cluster_chaos_replicated_streams_survive_member_loss() {
    use strandfs::cluster::{
        simulate_cluster, Cluster, ClusterAction, ClusterConfig, ClusterPlayback, Placement,
        ScriptedAction,
    };
    use strandfs::sim::ClipSpec;

    // Random placement × random member kill/rejoin: streams of k≥2-
    // replicated titles lose zero blocks (failover covers the outage),
    // single-replica streams obey the block-conservation law of the
    // degradation ladder, and the rejoined member comes back fsck-clean
    // with a catalog that matches its strand inventory exactly.
    check_with(
        &Config::with_cases(6),
        "cluster_chaos_replicated_streams_survive_member_loss",
        (
            (0u64..1_000, 2usize..5, 0u8..3),
            (1usize..3, 1u64..4, 2u64..8),
            (any_bool(), 1u64..4, 1u64..3),
        ),
        |&(
            (seed, volumes, placement_sel),
            (base_replicas, kill_round, rejoin_delay),
            (wiped, revoke_after, readmit_clean),
        )| {
            let placement = match placement_sel {
                0 => Placement::RoundRobin,
                1 => Placement::LeastLoaded,
                _ => Placement::Popularity {
                    hot_threshold: 0.5,
                    extra: 1,
                },
            };
            let mut c = Cluster::new(ClusterConfig {
                volumes,
                placement,
                base_replicas,
                seed,
            })
            .expect("cluster");
            let hot = c
                .ingest(
                    "hot",
                    &ClipSpec::video_seconds(1.0).with_seed(seed ^ 1),
                    1.0,
                )
                .expect("ingest hot");
            let cold = c
                .ingest(
                    "cold",
                    &ClipSpec::video_seconds(1.0).with_seed(seed ^ 2),
                    0.0,
                )
                .expect("ingest cold");
            let victim = (seed as usize) % volumes;
            let script = [
                ScriptedAction {
                    at_round: kill_round,
                    action: ClusterAction::Kill(victim),
                },
                ScriptedAction {
                    at_round: kill_round + rejoin_delay,
                    action: if wiped {
                        ClusterAction::RejoinWiped(victim)
                    } else {
                        ClusterAction::Rejoin(victim)
                    },
                },
            ];
            let mut cfg = ClusterPlayback::with_k(3).restore(2);
            cfg.revoke_after_drops = revoke_after;
            cfg.readmit_clean_rounds = readmit_clean;
            let report =
                simulate_cluster(&mut c, &[hot, cold], &script, &cfg).expect("cluster sim");

            for (i, s) in report.sim.streams.iter().enumerate() {
                if report.replicated[i] {
                    // Failover guarantee: a k≥2 title rides out one
                    // member loss without losing a single block.
                    prop_assert_eq!(
                        s.dropped_blocks,
                        0,
                        "replicated stream {} dropped blocks",
                        i
                    );
                } else {
                    // Ladder conservation: every block was delivered or
                    // explicitly degraded — none simply vanished.
                    prop_assert_eq!(
                        s.fetched + s.dropped_blocks,
                        s.blocks,
                        "stream {} leaked blocks",
                        i
                    );
                }
            }
            // A surviving replica existed for the replicated title, so
            // losing its serving volume must have forced a failover —
            // unless the viewer was already on a surviving copy.
            prop_assert!(report.rejoins.len() == 1, "exactly one rejoin ran");
            let rj = &report.rejoins[0];
            prop_assert_eq!(rj.volume, victim);
            prop_assert_eq!(rj.wiped, wiped);
            prop_assert_eq!(rj.fsck_findings, 0, "rejoin left fsck findings");
            if !wiped {
                prop_assert_eq!(rj.reconcile.lost, 0, "intact rejoin lost replicas");
            }
            // The rejoined member is internally consistent…
            let far_future = Instant::from_nanos(u64::MAX / 4);
            prop_assert!(
                c.fsck_member(victim, far_future).clean(),
                "rejoined member not fsck-clean"
            );
            // …and the catalog agrees with every member's strand
            // inventory: a fresh reconciliation pass is a no-op.
            for v in 0..volumes {
                let mut cat = c.catalog().clone();
                let rec = cat.reconcile(v, c.members()[v].mrs().msm());
                prop_assert_eq!(rec.restored, 0, "catalog stale on volume {}", v);
                prop_assert_eq!(rec.lost, 0, "catalog overstates volume {}", v);
            }
            let _ = cold;
            Ok(())
        },
    );
}

#[test]
fn cluster_integrity_chaos_scrub_repairs_and_viewers_stay_clean() {
    use strandfs::cluster::{simulate_cluster, Cluster, ClusterConfig, ClusterPlayback, Placement};
    use strandfs::disk::FaultPlan;
    use strandfs::sim::ClipSpec;

    // Random silent corruption on one replica plus a gray fail-slow
    // member at the same time: the scrubber must detect the decay,
    // repair it from the live copy through the re-replication path, and
    // the audited service loop must hand viewers zero corrupt and zero
    // dropped blocks throughout. Afterwards no corrupt block may remain
    // anywhere, every member is fsck-clean and the catalog reconciles
    // as a no-op.
    check_with(
        &Config::with_cases(6),
        "cluster_integrity_chaos_scrub_repairs_and_viewers_stay_clean",
        ((0u64..1_000, 2usize..4), (0u64..24, 1u64..5, 4u64..12)),
        |&((seed, volumes), (start, len, slow_x))| {
            let mut c = Cluster::new(ClusterConfig {
                volumes,
                placement: Placement::LeastLoaded,
                base_replicas: 2,
                seed,
            })
            .expect("cluster");
            let id = c
                .ingest(
                    "hot",
                    &ClipSpec::video_seconds(1.5).with_seed(seed ^ 9),
                    1.0,
                )
                .expect("ingest");
            c.set_verify_reads(true);
            // Flip one bit in a random run of replica 0's stored blocks,
            // invisibly to the device.
            let (v0, loc) = {
                let rep = &c.catalog().title(id).replicas[0];
                (rep.volume, rep.strands[0])
            };
            let v1 = c.catalog().title(id).replicas[1].volume;
            let first = start % loc.blocks;
            let mut plan = FaultPlan::clean();
            let mut corrupted = 0u64;
            for n in first..(first + len).min(loc.blocks) {
                let block = c.members()[v0]
                    .mrs()
                    .msm()
                    .strand(loc.strand)
                    .unwrap()
                    .block(n)
                    .unwrap();
                if let Some(e) = block {
                    plan = plan.with_silent_corruption(e);
                    corrupted += 1;
                }
            }
            prop_assert!(corrupted > 0, "video strands hold only stored blocks");
            prop_assert!(c.arm_member_faults(v0, plan));
            // Replica 1's member turns fail-slow: every op stretches,
            // nothing errors.
            prop_assert!(c.arm_member_faults(v1, FaultPlan::clean().with_fail_slow(slow_x as f64)));
            let mut cfg = ClusterPlayback::with_k(3)
                .scrub(3)
                .restore(2)
                .audited()
                .hedged();
            cfg.quarantine_after_rounds = 1;
            // Zero drops needs the glitch window covered: the paper's
            // buffer-ahead defense, provisioned for the fault envelope.
            // Steady state needs 2k (one degraded round until quarantine
            // kicks the slow member out); the corrupt run adds one
            // remote read-around serve per bad block, each costing
            // ~0.3·slow_x item durations on the slow source.
            cfg.read_ahead = 2 * cfg.k + (3 * len * slow_x).div_ceil(10);
            let report = simulate_cluster(&mut c, &[id, id], &[], &cfg).expect("cluster sim");

            // Every corrupt block was detected — by the scrubber or by a
            // verified viewer read — and repaired in place (or the
            // replica invalidated for rebuild); the audience never saw
            // it.
            prop_assert!(report.scrubbed_blocks > 0, "scrub never ran");
            prop_assert!(
                report.scrub_corrupt + report.read_repairs >= 1,
                "the corruption was never detected"
            );
            prop_assert!(
                report.scrub_repaired + report.read_repairs + report.scrub_invalidated >= 1,
                "no repair was triggered"
            );
            prop_assert_eq!(report.corrupt_served, 0, "a corrupt block reached a viewer");
            prop_assert_eq!(report.replicated_dropped(), 0, "replicated stream dropped");
            for (i, s) in report.sim.streams.iter().enumerate() {
                prop_assert_eq!(
                    s.fetched + s.dropped_blocks,
                    s.blocks,
                    "stream {} leaked",
                    i
                );
            }
            // Gray failure: both members stayed up the whole time.
            prop_assert!(
                c.is_up(v0) && c.is_up(v1),
                "gray faults must not down members"
            );
            // No corrupt block survives anywhere in the cluster.
            for v in 0..volumes {
                let ids = c.members()[v].mrs().msm().strand_ids();
                for sid in ids {
                    let blocks = c.members()[v]
                        .mrs()
                        .msm()
                        .strand(sid)
                        .unwrap()
                        .block_count();
                    for b in 0..blocks {
                        let ok = c.members()[v].mrs().msm().check_block_sum(sid, b).unwrap();
                        prop_assert!(
                            ok != Some(false),
                            "corrupt block survives on volume {} strand {:?} block {}",
                            v,
                            sid,
                            b
                        );
                    }
                }
            }
            // Every replica is live again, members are fsck-clean, and
            // a fresh reconciliation pass is a no-op.
            let far_future = Instant::from_nanos(u64::MAX / 4);
            for r in &c.catalog().title(id).replicas {
                prop_assert!(
                    matches!(r.state, strandfs::cluster::ReplicaState::Live),
                    "replica on volume {} not restored",
                    r.volume
                );
            }
            for v in 0..volumes {
                prop_assert!(c.fsck_member(v, far_future).clean(), "volume {} dirty", v);
                let mut cat = c.catalog().clone();
                let rec = cat.reconcile(v, c.members()[v].mrs().msm());
                prop_assert_eq!(rec.restored, 0, "catalog stale on volume {}", v);
                prop_assert_eq!(rec.lost, 0, "catalog overstates volume {}", v);
            }
            Ok(())
        },
    );
}

#[test]
fn fsx_model_checks_on_random_streams() {
    // The fsx exerciser as a shrinking property: any (seed, ops) stream
    // must keep the real MRS and the in-memory model rope in lockstep
    // (durations, flattened bytes, triggers, copy bounds). On failure
    // the harness shrinks `ops` toward the shortest prefix that still
    // diverges, and the panic carries the replay seed.
    check_with(
        &Config::with_cases(6),
        "fsx_model_checks_on_random_streams",
        (0u64..1 << 32, 30u64..90),
        |&(seed, ops)| {
            let cfg = FsxConfig::healthy(seed, ops);
            match fsx_try_run(&cfg) {
                Ok(out) => {
                    prop_assert_eq!(out.ops_attempted, ops);
                    prop_assert!(out.verifies > 0);
                    Ok(())
                }
                Err(e) => Err(CaseError::fail(e)),
            }
        },
    );
}
