//! # strandfs
//!
//! A continuous-media file system in Rust, reproducing *"Designing File
//! Systems for Digital Video and Audio"* (P. V. Rangan & H. M. Vin,
//! SOSP 1991).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`units`] — strongly-typed time, size and rate units;
//! * [`disk`] — the deterministic disk simulator (geometry, seek and
//!   rotation models, arrays, constrained allocation);
//! * [`media`] — media formats, synthetic codecs, device models, silence
//!   detection and workload generators;
//! * [`core`] — the paper's contribution: the continuity model, admission
//!   control, strands, ropes, the Multimedia Storage Manager (MSM) and
//!   the Multimedia Rope Server (MRS);
//! * [`sim`] — a discrete-event simulator measuring playback continuity;
//! * [`cluster`] — a multi-volume cluster: master catalog, replica
//!   placement, volume-failure failover and background re-replication;
//! * [`obs`] — the zero-perturbation observability layer (structured
//!   events, ring recorder, counters and histograms).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end record → play session,
//! and `DESIGN.md` / `EXPERIMENTS.md` for the experiment index mapping
//! each figure of the paper to a bench target.

#![forbid(unsafe_code)]

pub use strandfs_cluster as cluster;
pub use strandfs_core as core;
pub use strandfs_disk as disk;
pub use strandfs_media as media;
pub use strandfs_obs as obs;
pub use strandfs_sim as sim;
pub use strandfs_trace as trace;
pub use strandfs_units as units;
