//! A news/entertainment video server: capacity planning and concurrent
//! playback, the workload the paper's introduction motivates.
//!
//! Records a library of clips on a projected-future disk, asks the
//! admission controller how many clients it can serve, serves exactly
//! that many plus one rejected straggler, and verifies every admitted
//! client plays continuously.
//!
//! ```text
//! cargo run --release --example video_server
//! ```

use strandfs::core::admission::Aggregates;
use strandfs::core::mrs::compile_schedule;
use strandfs::core::msm::MsmConfig;
use strandfs::core::rope::edit::{Interval, MediaSel};
use strandfs::core::FsError;
use strandfs::disk::{DiskGeometry, GapBounds, SeekModel};
use strandfs::obs::ObsSink;
use strandfs::sim::playback::{simulate_playback, PlaybackConfig};
use strandfs::sim::{volume_on, ClipSpec};
use strandfs::trace::{chrome_trace, TraceOptions};
use strandfs::units::{Instant, Nanos};

fn main() {
    // A library of 12 news clips on the projected-future disk.
    let library: Vec<ClipSpec> = (0..12)
        .map(|i| ClipSpec::video_seconds(10.0).with_seed(100 + i))
        .collect();
    let (mut mrs, ropes) = volume_on(
        DiskGeometry::projected_fast(),
        SeekModel::projected_fast(),
        MsmConfig::constrained(
            GapBounds {
                min_sectors: 0,
                max_sectors: 120_000,
            },
            1,
        ),
        &library,
    )
    .expect("build volume");
    // Watch the server work: a bounded ring recorder captures every
    // admission decision, service round and per-block deadline margin
    // without perturbing the simulation.
    let (sink, recorder) = ObsSink::ring(1 << 18);
    mrs.set_obs(sink);
    println!(
        "library: {} clips, volume {:.0}% full",
        ropes.len(),
        mrs.msm().utilization() * 100.0
    );

    // Admit clients until the server refuses.
    let mut admitted = Vec::new();
    let mut rejected = 0;
    for (client, rope_id) in ropes.iter().enumerate() {
        let rope = mrs.rope(*rope_id).unwrap().clone();
        match mrs.play(
            &format!("client-{client}"),
            *rope_id,
            MediaSel::Both,
            Interval::whole(rope.duration()),
        ) {
            Ok((req, mut schedule)) => {
                mrs.resolve_silence(&mut schedule).unwrap();
                admitted.push((req, schedule));
            }
            Err(FsError::AdmissionRejected { active, n_max }) => {
                rejected += 1;
                println!(
                    "client-{client}: REJECTED (server at {active} streams, capacity {n_max})"
                );
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    println!("admitted {} clients, rejected {rejected}", admitted.len());

    // The controller's own k drives the service rounds.
    let k = mrs.msm().admission_ref().k().max(1);
    let agg = mrs.msm().admission_ref().aggregates().unwrap();
    println!(
        "service plan: k = {k} blocks/request/round (alpha {:.1} ms, beta {:.1} ms, gamma {:.0} ms)",
        agg.alpha.get() * 1e3,
        agg.beta.get() * 1e3,
        agg.gamma.get() * 1e3,
    );
    sanity_check_formula(&agg, admitted.len());

    let schedules: Vec<_> = admitted.iter().map(|(_, s)| s.clone()).collect();
    let report =
        simulate_playback(&mut mrs, schedules, PlaybackConfig::with_k(k)).expect("simulate");
    for (i, s) in report.streams.iter().enumerate() {
        println!(
            "client-{i}: {} blocks, {} violations, start latency {}, buffers {}",
            s.blocks, s.violations, s.start_latency, s.max_buffered
        );
    }
    assert!(
        report.all_continuous(),
        "every admitted client must play continuously"
    );
    for (req, _) in admitted {
        mrs.stop(req, Instant::EPOCH).unwrap();
    }
    println!(
        "OK — {} concurrent continuous streams, {} service rounds, disk busy {}",
        report.streams.len(),
        report.rounds,
        report.disk_busy
    );

    // What the observability layer saw.
    {
        let r = recorder.borrow();
        let m = r.metrics();
        println!(
            "obs: {} reads / {} writes (mean service {}), \
             {} admits / {} rejects (min Eq.18 slack {}), \
             {} rounds, tightest deadline margin {}",
            m.disk_reads,
            m.disk_writes,
            m.disk_service.summary().mean,
            m.admits,
            m.rejects,
            m.admit_slack.summary().min,
            m.rounds,
            m.deadline_margin.summary().min,
        );
        assert_eq!(m.rejects, rejected, "every rejection was recorded");
        assert_eq!(m.deadline_late, 0, "continuous run has no late blocks");
    }

    // A rejected client can still compile a schedule for later (e.g.
    // reservation), it just cannot be serviced now.
    let rope = mrs.rope(ropes[0]).unwrap().clone();
    let offline =
        compile_schedule(&rope, MediaSel::Both, Interval::whole(rope.duration())).unwrap();
    println!(
        "(offline schedule for a waitlisted client: {} blocks)",
        offline.items.len()
    );

    // The continuity SLO view of the same run: aggregate miss rate,
    // worst and p99 deadline margins across every admitted client.
    let slo = report.slo();
    println!(
        "slo: {} blocks, miss rate {:.4}, worst margin {} ns, p99 margin {} ns",
        slo.total_blocks, slo.miss_rate, slo.worst_margin_ns, slo.p99_margin_ns
    );
    assert!(slo.clean());

    // Export the whole session — recording, admission, rounds, per-op
    // disk mechanics, deadline outcomes — as a Chrome trace. Load it in
    // https://ui.perfetto.dev (γ enables the round-slack counter).
    let doc = chrome_trace(
        recorder.borrow().events(),
        &TraceOptions {
            gamma: Some(Nanos::from_secs_f64(agg.gamma.get())),
            dropped_events: recorder.borrow().dropped(),
        },
    );
    let path = "TRACE_video_server.json";
    std::fs::write(path, &doc).expect("write trace");
    println!("wrote {path} — open in Perfetto to see the timeline");
}

fn sanity_check_formula(agg: &Aggregates, n: usize) {
    // Eq. 15 must hold for the k the server chose.
    let k = agg.k_transient(n).expect("admitted set is feasible");
    assert!(agg.steady_feasible(n, k));
    assert!(agg.transient_feasible(n, k));
}
