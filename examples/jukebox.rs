//! An interactive-style jukebox session: PAUSE / RESUME semantics,
//! trigger captions, fast-forward and slow motion — the user-facing
//! operations of §4.1 and §3.3.2.
//!
//! ```text
//! cargo run --release --example jukebox
//! ```

use strandfs::core::mrs::{apply_play_mode, compile_schedule};
use strandfs::core::msm::MsmConfig;
use strandfs::core::rope::edit::{Interval, MediaSel};
use strandfs::core::rope::AccessList;
use strandfs::core::FsError;
use strandfs::disk::{DiskGeometry, GapBounds, SeekModel};
use strandfs::sim::playback::{simulate_playback, PlaybackConfig};
use strandfs::sim::{volume_on, ClipSpec};
use strandfs::units::{Instant, Nanos};

fn main() {
    // Two tracks in the jukebox, on the projected-future disk.
    let (mut mrs, ropes) = volume_on(
        DiskGeometry::projected_fast(),
        SeekModel::projected_fast(),
        MsmConfig::constrained(
            GapBounds {
                min_sectors: 0,
                max_sectors: 120_000,
            },
            11,
        ),
        &[
            ClipSpec::av_seconds(8.0).with_seed(70),
            ClipSpec::av_seconds(8.0).with_seed(71),
        ],
    )
    .expect("build volume");
    let (track_a, track_b) = (ropes[0], ropes[1]);
    mrs.add_trigger("sim", track_a, Nanos::from_secs(0), "Track A — intro")
        .unwrap();
    mrs.add_trigger("sim", track_a, Nanos::from_secs(4), "Track A — chorus")
        .unwrap();
    // The owner opens play access and keeps editing to themselves.
    mrs.set_access(
        "sim",
        track_a,
        AccessList::everyone(),
        AccessList::only(&[]),
    )
    .unwrap();

    // Listener 1 starts track A; the schedule carries the captions.
    let dur = mrs.rope(track_a).unwrap().duration();
    let (req_a, schedule_a) = mrs
        .play("listener-1", track_a, MediaSel::Both, Interval::whole(dur))
        .unwrap();
    println!(
        "listener-1: playing track A ({} blocks, captions: {:?})",
        schedule_a.items.len(),
        schedule_a
            .triggers
            .iter()
            .map(|t| format!("{} @ {}", t.text, t.at))
            .collect::<Vec<_>>()
    );

    // They pause destructively (leaving the listening booth)...
    mrs.pause(req_a, true).unwrap();
    println!("listener-1: destructive PAUSE — server slots released");

    // ...which lets a crowd in; the server fills to capacity.
    let mut crowd = Vec::new();
    loop {
        let dur_b = mrs.rope(track_b).unwrap().duration();
        match mrs.play(
            &format!("crowd-{}", crowd.len()),
            track_b,
            MediaSel::Both,
            Interval::whole(dur_b),
        ) {
            Ok((req, _)) => crowd.push(req),
            Err(FsError::AdmissionRejected { active, n_max }) => {
                println!("server full: {active} streams in service (capacity {n_max})");
                break;
            }
            Err(e) => panic!("unexpected {e}"),
        }
    }

    // Listener 1 cannot resume until someone leaves.
    match mrs.resume(req_a) {
        Err(FsError::AdmissionRejected { .. }) => {
            println!("listener-1: RESUME rejected while the crowd plays")
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    let leaver = crowd.pop().unwrap();
    mrs.stop(leaver, Instant::EPOCH).unwrap();
    mrs.resume(req_a).unwrap();
    println!("listener-1: RESUME admitted after a slot freed");

    // Scrub controls: preview track A at 4x with skipping, then replay
    // the chorus in slow motion.
    let rope = mrs.rope(track_a).unwrap().clone();
    let base = compile_schedule(&rope, MediaSel::Video, Interval::whole(rope.duration())).unwrap();
    let mut preview = apply_play_mode(&base, 4.0, true);
    mrs.resolve_silence(&mut preview).unwrap();
    println!(
        "4x skip preview: {} of {} blocks fetched, {} wall time",
        preview.items.len(),
        base.items.len(),
        preview.duration
    );
    let chorus = compile_schedule(
        &rope,
        MediaSel::Video,
        Interval::new(Nanos::from_secs(4), Nanos::from_secs(2)),
    )
    .unwrap();
    let mut slow = apply_play_mode(&chorus, 0.5, false);
    mrs.resolve_silence(&mut slow).unwrap();

    // Both special modes play continuously on this volume.
    for (label, sched) in [("4x-skip", preview), ("0.5x chorus", slow)] {
        let report =
            simulate_playback(&mut mrs, vec![sched], PlaybackConfig::with_k(2)).expect("simulate");
        println!(
            "{label}: {} violations, buffer high-water {} blocks",
            report.total_violations(),
            report.max_buffered()
        );
        assert!(report.all_continuous());
    }

    // Tidy up.
    for req in crowd {
        mrs.stop(req, Instant::EPOCH).unwrap();
    }
    mrs.stop(req_a, Instant::EPOCH).unwrap();
    assert_eq!(mrs.msm().admission_ref().active(), 0);
    println!("OK — sessions, captions and scrub modes all behave.");
}
