//! Capacity planning with the analytic model: given a disk and a media
//! format, derive the storage layout (granularity + scattering), the
//! buffering plan, and the number of concurrent streams the server can
//! promise — before committing any hardware.
//!
//! ```text
//! cargo run --example capacity_planner
//! ```

use strandfs::core::admission::{Aggregates, RequestSpec, ServiceEnv};
use strandfs::core::model::buffering::{anti_jitter_delay, averaged_plan, task_switch_read_ahead};
use strandfs::core::model::granularity::{derive_video_layout, QChoice};
use strandfs::core::model::{DiskParams, VideoStream};
use strandfs::disk::{DiskGeometry, GapBounds, SeekModel, SimDisk};
use strandfs::media::{DisplayDevice, RetrievalArchitecture, VideoCodec};

fn main() {
    for (name, geometry, seek) in [
        (
            "vintage 1991 (≈330 MB, 3600 RPM)",
            DiskGeometry::vintage_1991(),
            SeekModel::vintage_1991(),
        ),
        (
            "projected fast (≈2 GB, 7200 RPM)",
            DiskGeometry::projected_fast(),
            SeekModel::projected_fast(),
        ),
    ] {
        let disk = SimDisk::new(geometry, seek);
        let codec = VideoCodec::uvc_ntsc(0);
        let device = DisplayDevice::uvc(16);
        let frame_bits = codec.mean_frame_bits(30);

        println!("=== {name} ===");
        println!(
            "  transfer {:.1} Mbit/s, worst positioning {:.1} ms",
            disk.geometry().track_transfer_rate().as_mbit_per_sec(),
            disk.max_positioning_time().get() * 1e3
        );

        // 1. Layout per architecture (§3.3.4).
        for arch in [
            RetrievalArchitecture::Sequential,
            RetrievalArchitecture::Pipelined,
        ] {
            match derive_video_layout(arch, &device, frame_bits, &disk, QChoice::MaxBuffers) {
                Some(layout) => {
                    println!(
                        "  {arch:?}: q = {} frames/block ({} sectors), scattering <= {:.1} ms",
                        layout.q,
                        layout.block_sectors,
                        layout.scattering_upper.get() * 1e3
                    );
                    // Map the time bound to an allocator gap bound.
                    if let Some(gaps) = GapBounds::from_times(
                        &disk,
                        strandfs::units::Seconds::new(0.0),
                        layout.scattering_upper,
                    ) {
                        println!(
                            "      allocator gap bound: <= {} sectors (~{} cylinders)",
                            gaps.max_sectors,
                            gaps.max_sectors / disk.geometry().sectors_per_cylinder().max(1)
                        );
                    }
                }
                None => println!("  {arch:?}: INFEASIBLE for this stream"),
            }
        }

        // 2. Buffering & read-ahead (§3.3.2) for the pipelined plan.
        let stream = VideoStream::from_codec(&codec, 30, device.display_rate, 3);
        let params = DiskParams::from_disk(&disk, 40);
        let plan = averaged_plan(RetrievalArchitecture::Pipelined, 4);
        println!(
            "  pipelined, k = 4: read-ahead {} blocks, {} buffers, startup {:.0} ms",
            plan.read_ahead_blocks,
            plan.buffers,
            anti_jitter_delay(&plan, &stream, &params).get() * 1e3
        );
        println!(
            "  extra read-ahead before a disk task-switch: h = {} blocks",
            task_switch_read_ahead(&stream, &params)
        );

        // 3. Concurrent-stream capacity (§3.4).
        let env = ServiceEnv {
            r_dt: params.r_dt,
            l_seek_max: params.l_seek_max,
            l_ds_avg: params.l_ds_avg,
        };
        let spec = RequestSpec {
            q: 3,
            unit_bits: frame_bits,
            unit_rate: 30.0,
        };
        let agg = Aggregates::compute(&env, &[spec]).unwrap();
        println!(
            "  capacity: n_max = {} concurrent NTSC streams",
            agg.n_max()
        );
        for n in 1..=agg.n_max() {
            let specs = vec![spec; n];
            let agg_n = Aggregates::compute(&env, &specs).unwrap();
            println!(
                "    n = {n}: k = {} blocks/round (Eq.18), round <= {:.0} ms vs budget {:.0} ms",
                agg_n.k_transient(n).unwrap(),
                agg_n.round_time(n, agg_n.k_transient(n).unwrap()).get() * 1e3,
                agg_n.playback_budget(agg_n.k_transient(n).unwrap()).get() * 1e3,
            );
        }
        println!();
    }
}
