//! A multimedia editing session: the paper's rope operations end to end.
//!
//! Records raw footage and a voice-over, then cuts a story together with
//! `SUBSTRING` / `INSERT` / `REPLACE` / `DELETE` / `CONCATE` — all
//! pointer edits over immutable strands — lets the scattering-healing
//! pass copy its bounded handful of boundary blocks, garbage-collects
//! the footage nobody references anymore, and plays the final cut.
//!
//! ```text
//! cargo run --release --example editing_studio
//! ```

use strandfs::core::mrs::compile_schedule;
use strandfs::core::msm::MsmConfig;
use strandfs::core::rope::edit::{Interval, MediaSel};
use strandfs::disk::{DiskGeometry, GapBounds, SeekModel};
use strandfs::sim::playback::{simulate_playback, PlaybackConfig};
use strandfs::sim::{record_clip, volume_on, ClipSpec};
use strandfs::units::{Instant, Nanos};

fn secs(s: u64) -> Nanos {
    Nanos::from_secs(s)
}

fn main() {
    // Footage: two AV takes and a separately-recorded voice-over.
    let (mut mrs, ropes) = volume_on(
        DiskGeometry::vintage_1991(),
        SeekModel::vintage_1991(),
        MsmConfig::constrained(
            GapBounds {
                min_sectors: 0,
                max_sectors: 40_000,
            },
            7,
        ),
        &[
            ClipSpec::av_seconds(10.0).with_seed(1), // take 1
            ClipSpec::av_seconds(6.0).with_seed(2),  // take 2
        ],
    )
    .expect("build volume");
    let (take1, take2) = (ropes[0], ropes[1]);
    let voice_over = record_clip(
        &mut mrs,
        &ClipSpec {
            seconds: 4.0,
            video: false,
            audio: true,
            vbr: false,
            seed: 3,
        },
    )
    .expect("record clip");
    println!(
        "footage: take1 {:.0}s AV, take2 {:.0}s AV, voice-over {:.0}s audio",
        mrs.rope(take1).unwrap().duration().as_secs_f64(),
        mrs.rope(take2).unwrap().duration().as_secs_f64(),
        mrs.rope(voice_over).unwrap().duration().as_secs_f64(),
    );
    let strands_at_start = mrs.msm().strand_ids().len();

    // Cut: the best 4 seconds of take 2...
    let highlight = mrs
        .substring(
            "sim",
            take2,
            MediaSel::Both,
            Interval::new(secs(1), secs(4)),
        )
        .unwrap();
    // ...inserted into take 1 at t = 5 s (Fig. 9's operation)...
    mrs.insert(
        "sim",
        take1,
        secs(5),
        MediaSel::Both,
        highlight,
        Interval::whole(secs(4)),
        Instant::EPOCH,
    )
    .unwrap();
    println!(
        "after INSERT: story = {:.0} s in {} segments",
        mrs.rope(take1).unwrap().duration().as_secs_f64(),
        mrs.rope(take1).unwrap().segments.len()
    );

    // ...dub the first 4 s of audio with the voice-over (the paper's
    // Rope4/Rope5 merge)...
    mrs.replace(
        "sim",
        take1,
        MediaSel::Audio,
        Interval::new(secs(0), secs(4)),
        voice_over,
        Interval::whole(secs(4)),
        Instant::EPOCH,
    )
    .unwrap();

    // ...drop a flubbed second, and tag the result.
    mrs.delete(
        "sim",
        take1,
        MediaSel::Both,
        Interval::new(secs(12), secs(1)),
        Instant::EPOCH,
    )
    .unwrap();
    mrs.add_trigger("sim", take1, secs(0), "THE EVENING NEWS")
        .unwrap();
    mrs.add_trigger("sim", take1, secs(5), "[highlight]")
        .unwrap();

    let story = mrs.rope(take1).unwrap().clone();
    story.check_invariants().unwrap();
    println!(
        "final cut: {:.1} s, {} segments, {} triggers, references {} strands",
        story.duration().as_secs_f64(),
        story.segments.len(),
        story.triggers.len(),
        story.strand_ids().len()
    );
    let healed_strands = mrs.msm().strand_ids().len() - strands_at_start;
    println!("scattering healing created {healed_strands} bridging strands");

    // The studio archives the highlight reel too.
    let archive = mrs.concat("sim", take1, highlight).unwrap();
    println!(
        "archive rope: {:.1} s (shares every strand with the cut)",
        mrs.rope(archive).unwrap().duration().as_secs_f64()
    );

    // Delete the scratch ropes; GC reclaims only unreferenced strands.
    mrs.delete_rope("sim", take2).unwrap();
    mrs.delete_rope("sim", voice_over).unwrap();
    let collected = mrs.gc();
    println!(
        "GC after deleting scratch ropes: {} strands collected (shared ones survive)",
        collected.len()
    );

    // The edited rope still plays continuously.
    let mut schedule =
        compile_schedule(&story, MediaSel::Both, Interval::whole(story.duration())).unwrap();
    mrs.resolve_silence(&mut schedule).unwrap();
    let report =
        simulate_playback(&mut mrs, vec![schedule], PlaybackConfig::with_k(2)).expect("simulate");
    println!(
        "playback of the cut: {} blocks, {} violations",
        report.streams[0].blocks, report.streams[0].violations
    );
    assert!(
        report.all_continuous(),
        "edited rope must play continuously"
    );
    println!("OK — copy-free editing with bounded healing and safe GC.");
}
