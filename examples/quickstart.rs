//! Quickstart: create a volume, RECORD an audio+video rope, PLAY it
//! back, and verify continuity.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use strandfs::core::mrs::{Mrs, RecordOpts, TrackOpts};
use strandfs::core::msm::{Msm, MsmConfig};
use strandfs::core::rope::edit::{Interval, MediaSel};
use strandfs::core::strand::StrandMeta;
use strandfs::disk::{DiskGeometry, GapBounds, SeekModel, SimDisk};
use strandfs::media::silence::{SilenceDetector, TalkSpurtSource};
use strandfs::media::{Medium, VideoCodec};
use strandfs::sim::playback::{simulate_playback, PlaybackConfig};
use strandfs::units::{Bits, Instant};

fn main() {
    // 1. A simulated 1991-class disk, formatted with constrained
    //    allocation: successive blocks of a strand are at most 40 000
    //    sectors apart, so seeks between them stay bounded.
    let disk = SimDisk::new(DiskGeometry::vintage_1991(), SeekModel::vintage_1991());
    println!(
        "volume: {} ({} cylinders, {:.1} ms worst positioning)",
        disk.geometry().capacity(),
        disk.geometry().cylinders,
        disk.max_positioning_time().get() * 1e3
    );
    let config = MsmConfig::constrained(
        GapBounds {
            min_sectors: 0,
            max_sectors: 40_000,
        },
        42,
    );
    let mut mrs = Mrs::new(Msm::new(disk, config));

    // 2. RECORD: 5 seconds of NTSC video (UVC codec, 12:1) plus
    //    telephone audio with silence elimination.
    let req = mrs
        .record(
            "alice",
            RecordOpts {
                video: Some(TrackOpts {
                    meta: StrandMeta {
                        medium: Medium::Video,
                        unit_rate: 30.0,
                        granularity: 3, // 3 frames per block = 100 ms
                        unit_bits: Bits::new(96_000),
                    },
                    silence: None,
                }),
                audio: Some(TrackOpts {
                    meta: StrandMeta {
                        medium: Medium::Audio,
                        unit_rate: 8_000.0,
                        granularity: 800, // 100 ms of samples
                        unit_bits: Bits::new(8),
                    },
                    silence: Some(SilenceDetector::telephone()),
                }),
            },
        )
        .expect("admission");

    let codec = VideoCodec::uvc_ntsc(7);
    let mut now = Instant::EPOCH;
    for i in 0..150 {
        let bytes = codec.frame_bits(i).to_bytes_ceil().get() as usize;
        if let Some(op) = mrs
            .record_video_frame(req, now, &codec.frame_payload(i, bytes))
            .unwrap()
        {
            now = op.completed;
        }
    }
    let speech = TalkSpurtSource::telephone(7).generate(8_000 * 5);
    for chunk in speech.chunks(4_000) {
        let ops = mrs.record_audio_samples(req, now, chunk).unwrap();
        if let Some(op) = ops.last() {
            now = op.completed;
        }
    }
    let rope_id = mrs.stop(req, now).unwrap().expect("rope created");
    let rope = mrs.rope(rope_id).unwrap();
    println!(
        "recorded {rope_id}: {:.1} s, video + audio, {} strands",
        rope.duration().as_secs_f64(),
        rope.strand_ids().len()
    );
    let audio = rope.segments[0].audio.unwrap();
    let audio_strand = mrs.msm().strand(audio.strand).unwrap();
    println!(
        "audio strand: {} blocks, {:.0}% eliminated as silence",
        audio_strand.block_count(),
        audio_strand.silence_fraction() * 100.0
    );

    // 3. PLAY it back through the admission-controlled path and check
    //    continuity against the simulated disk.
    let dur = rope.duration();
    let (play_req, mut schedule) = mrs
        .play("bob", rope_id, MediaSel::Both, Interval::whole(dur))
        .expect("admission");
    mrs.resolve_silence(&mut schedule).unwrap();
    println!(
        "playback schedule: {} blocks ({} disk fetches)",
        schedule.items.len(),
        schedule.fetch_count()
    );
    let report =
        simulate_playback(&mut mrs, vec![schedule], PlaybackConfig::with_k(2)).expect("simulate");
    let s = &report.streams[0];
    println!(
        "playback: {} violations, start latency {}, max buffer {} blocks",
        s.violations, s.start_latency, s.max_buffered
    );
    assert!(s.continuous(), "quickstart playback must be continuous");
    mrs.stop(play_req, Instant::EPOCH).unwrap();
    println!("OK — continuous playback on a 1991 disk.");
}
