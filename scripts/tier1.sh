#!/usr/bin/env bash
# The tier-1 gate: formatting, then a fully offline build and test run.
# The workspace has zero external dependencies, so --offline must always
# succeed; any accidental reintroduction of a crates.io dependency fails
# here before it fails in CI.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "==> bench --check --quick (regression gate smoke)"
cargo run -p strandfs-bench --release --offline --bin bench -- --check --quick

echo "tier1: OK"
