#!/usr/bin/env bash
# The tier-1 gate: formatting, then a fully offline build and test run.
# The workspace has zero external dependencies, so --offline must always
# succeed; any accidental reintroduction of a crates.io dependency fails
# here before it fails in CI.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --workspace -q --offline"
cargo test --workspace -q --offline

# The quick gate caps the E16 scale sweep at 10k streams (the 100k cell
# is a multi-second measurement); the committed baseline is generated
# uncapped, and `bench --check` drops baseline entries for capped-out
# sizes. Override with STRANDFS_SCALE_CAP= to sweep everything.
SCALE_CAP="${STRANDFS_SCALE_CAP:-10000}"
echo "==> bench --check --quick (regression gate smoke, STRANDFS_SCALE_CAP=$SCALE_CAP)"
STRANDFS_SCALE_CAP="$SCALE_CAP" \
    cargo run -p strandfs-bench --release --offline --bin bench -- --check --quick

# Live-monitoring smoke: the deterministic E17 fault storm must raise
# its burn-rate alert and render a loadable flight excerpt covering the
# offending rounds (bounded: 2 streams, 80 rounds, <1 s).
echo "==> live-monitor smoke (E17 alert + flight excerpt)"
cargo test -q --offline -p strandfs-bench --test monitor_gate

# Seeded chaos pass: replay the failure-injection and fault-plan
# property suites plus the exhaustive crash-point sweep under a fresh
# random seed so each run explores new fault schedules and tear
# lengths. The seed is logged; to replay a failure, re-run with
# STRANDFS_TEST_SEED pinned to the printed value.
CHAOS_SEED="${STRANDFS_TEST_SEED:-$(od -An -N8 -tu8 /dev/urandom | tr -d ' ')}"
echo "==> chaos pass (STRANDFS_TEST_SEED=$CHAOS_SEED)"
STRANDFS_TEST_SEED="$CHAOS_SEED" cargo test -q --offline \
    --test failure_injection --test proptests_sim --test crash_recovery

# Bounded cluster failover smoke: one seeded kill-one-member run on a
# two-volume cluster with a replicated title (tests/cluster_failover.rs).
# The seed picks the victim and the kill round; the contract — zero
# dropped blocks on replicated streams, a read-ahead-bounded glitch and
# an fsck-clean rejoin — must hold for every seed. Replay any failure
# with the printed seed.
echo "==> cluster failover smoke (STRANDFS_TEST_SEED=$CHAOS_SEED)"
STRANDFS_TEST_SEED="$CHAOS_SEED" cargo test -q --offline --test cluster_failover

# Bounded scrub + hedge chaos smoke: seeded SilentCorruption +
# FailSlow plans over a replicated cluster (tests/proptests_sim.rs,
# `cluster_integrity_chaos_*`). The contract: every flip is detected
# and repaired (read-around or scrub), replicated streams serve zero
# corrupt and zero dropped blocks past the fail-slow member, and the
# repaired cluster ends fsck-clean with a consistent catalog. The case
# count runs deeper here than in the default suite pass above (capped
# in-test at 48); replay any failure with the printed seed.
INTEGRITY_CASES="${STRANDFS_TEST_CASES:-24}"
echo "==> scrub+hedge chaos smoke (STRANDFS_TEST_SEED=$CHAOS_SEED STRANDFS_TEST_CASES=$INTEGRITY_CASES)"
STRANDFS_TEST_SEED="$CHAOS_SEED" STRANDFS_TEST_CASES="$INTEGRITY_CASES" \
    cargo test -q --offline --test proptests_sim cluster_integrity_chaos

# Bounded fsx chaos: one seeded random rope-editing stream, model-checked
# at every step with Eq. 19/20 copy-bound enforcement (tests/fsx.rs,
# `chaos_pass_bounded_by_env`). STRANDFS_FSX_OPS bounds the stream
# length (default 80); replay any failure with the printed seed.
FSX_OPS="${STRANDFS_FSX_OPS:-80}"
echo "==> fsx chaos pass (STRANDFS_TEST_SEED=$CHAOS_SEED STRANDFS_FSX_OPS=$FSX_OPS)"
STRANDFS_TEST_SEED="$CHAOS_SEED" STRANDFS_FSX_OPS="$FSX_OPS" \
    cargo test -q --offline --test fsx chaos_pass_bounded_by_env

echo "tier1: OK"
