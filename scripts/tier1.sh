#!/usr/bin/env bash
# The tier-1 gate: formatting, then a fully offline build and test run.
# The workspace has zero external dependencies, so --offline must always
# succeed; any accidental reintroduction of a crates.io dependency fails
# here before it fails in CI.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --offline -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --workspace --release --offline"
cargo build --workspace --release --offline

echo "==> cargo test --workspace -q --offline"
cargo test --workspace -q --offline

echo "==> bench --check --quick (regression gate smoke)"
cargo run -p strandfs-bench --release --offline --bin bench -- --check --quick

# Seeded chaos pass: replay the failure-injection and fault-plan
# property suites plus the exhaustive crash-point sweep under a fresh
# random seed so each run explores new fault schedules and tear
# lengths. The seed is logged; to replay a failure, re-run with
# STRANDFS_TEST_SEED pinned to the printed value.
CHAOS_SEED="${STRANDFS_TEST_SEED:-$(od -An -N8 -tu8 /dev/urandom | tr -d ' ')}"
echo "==> chaos pass (STRANDFS_TEST_SEED=$CHAOS_SEED)"
STRANDFS_TEST_SEED="$CHAOS_SEED" cargo test -q --offline \
    --test failure_injection --test proptests_sim --test crash_recovery

echo "tier1: OK"
